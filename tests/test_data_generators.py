"""Tests for datasets and workload generators (repro.data)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.generators import UniformDatasetGenerator, ZipfDatasetGenerator, zipf_probabilities
from repro.data.worldcup import WorldCupLikeGenerator
from repro.errors import InvalidParameterError
from repro.mapreduce.hdfs import HDFS


class TestZipfProbabilities:
    def test_sums_to_one_and_is_decreasing(self):
        p = zipf_probabilities(1024, 1.1)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(np.diff(p) <= 0)

    def test_alpha_zero_is_uniform(self):
        p = zipf_probabilities(64, 0.0)
        assert np.allclose(p, 1.0 / 64)

    def test_higher_alpha_is_more_skewed(self):
        light = zipf_probabilities(256, 0.8)
        heavy = zipf_probabilities(256, 1.4)
        assert heavy[0] > light[0]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            zipf_probabilities(64, -1.0)
        from repro.errors import InvalidDomainError

        with pytest.raises(InvalidDomainError):
            zipf_probabilities(100, 1.0)


class TestZipfDatasetGenerator:
    def test_generates_requested_records_in_domain(self):
        dataset = ZipfDatasetGenerator(u=512, alpha=1.1, seed=1).generate(10_000)
        assert dataset.n == 10_000
        assert dataset.u == 512
        assert dataset.keys.min() >= 1 and dataset.keys.max() <= 512

    def test_deterministic_given_seed(self):
        a = ZipfDatasetGenerator(u=256, seed=5).generate(1000)
        b = ZipfDatasetGenerator(u=256, seed=5).generate(1000)
        c = ZipfDatasetGenerator(u=256, seed=6).generate(1000)
        assert np.array_equal(a.keys, b.keys)
        assert not np.array_equal(a.keys, c.keys)

    def test_skew_shows_in_top_key_share(self):
        flat = ZipfDatasetGenerator(u=256, alpha=0.8, seed=2).generate(50_000)
        skewed = ZipfDatasetGenerator(u=256, alpha=1.4, seed=2).generate(50_000)
        top_share = lambda ds: max(ds.frequency_vector().counts.values()) / ds.n
        assert top_share(skewed) > top_share(flat)

    def test_keys_are_permuted_not_rank_ordered(self):
        """The most frequent key should usually not be key 1 (ranks are scattered)."""
        datasets = [ZipfDatasetGenerator(u=1024, alpha=1.2, seed=s).generate(5000)
                    for s in range(5)]
        top_keys = set()
        for dataset in datasets:
            counts = dataset.frequency_vector().counts
            top_keys.add(max(counts, key=counts.get))
        assert top_keys != {1}

    def test_invalid_n(self):
        with pytest.raises(InvalidParameterError):
            ZipfDatasetGenerator(u=64).generate(0)

    def test_uniform_generator(self):
        dataset = UniformDatasetGenerator(u=128, seed=1).generate(20_000)
        counts = dataset.frequency_vector()
        assert counts.distinct_keys > 100
        assert max(counts.counts.values()) < 0.05 * dataset.n
        with pytest.raises(InvalidParameterError):
            UniformDatasetGenerator(u=128).generate(0)


class TestWorldCupLikeGenerator:
    def test_generates_heavy_tailed_composite_keys(self):
        generator = WorldCupLikeGenerator(u=2 ** 12, num_clients=256, num_objects=128, seed=9)
        dataset = generator.generate(40_000)
        assert dataset.n == 40_000
        assert dataset.record_size_bytes == 40
        vector = dataset.frequency_vector()
        counts = sorted(vector.counts.values(), reverse=True)
        # Heavy tail: the top 1% of keys carry a disproportionate share.
        top_one_percent = sum(counts[: max(1, len(counts) // 100)])
        assert top_one_percent > 0.05 * dataset.n
        assert vector.distinct_keys <= generator.expected_distinct_pairs()

    def test_deterministic_given_seed(self):
        a = WorldCupLikeGenerator(u=1024, seed=3).generate(5000)
        b = WorldCupLikeGenerator(u=1024, seed=3).generate(5000)
        assert np.array_equal(a.keys, b.keys)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            WorldCupLikeGenerator(u=1024, num_clients=0)
        with pytest.raises(InvalidParameterError):
            WorldCupLikeGenerator(u=1024).generate(0)


class TestDataset:
    def test_size_and_frequency_vector(self):
        dataset = Dataset(name="d", keys=np.array([1, 1, 2, 4]), u=8, record_size_bytes=10)
        assert dataset.n == 4
        assert dataset.size_bytes == 40
        assert dataset.frequency_vector().counts == {1: 2.0, 2: 1.0, 4: 1.0}

    def test_to_hdfs(self):
        dataset = Dataset(name="d", keys=np.array([1, 2, 3]), u=8)
        hdfs = HDFS()
        hdfs_file = dataset.to_hdfs(hdfs)
        assert hdfs.exists("/data/d")
        assert hdfs_file.num_records == 3

    def test_with_record_size_and_subset(self):
        dataset = Dataset(name="d", keys=np.arange(1, 101), u=128)
        bigger = dataset.with_record_size(100)
        assert bigger.size_bytes == 100 * 100
        assert bigger.n == dataset.n
        prefix = dataset.subset(10)
        assert prefix.n == 10
        assert list(prefix.keys) == list(range(1, 11))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            Dataset(name="d", keys=np.array([0]), u=8)
        with pytest.raises(InvalidParameterError):
            Dataset(name="d", keys=np.array([9]), u=8)
        with pytest.raises(InvalidParameterError):
            Dataset(name="d", keys=np.array([1]), u=8, record_size_bytes=2)
        dataset = Dataset(name="d", keys=np.array([1, 2]), u=8)
        with pytest.raises(InvalidParameterError):
            dataset.subset(5)
