"""Tests for multi-dimensional Haar transforms (repro.core.multidim)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multidim import (
    haar_transform_nd,
    inverse_haar_transform_nd,
    reconstruct_from_top_k_nd,
    top_k_coefficients_nd,
)
from repro.errors import InvalidDomainError, InvalidParameterError


class TestTransformNd:
    def test_2d_roundtrip(self):
        rng = np.random.default_rng(0)
        signal = rng.integers(0, 50, size=(8, 16)).astype(float)
        coefficients = haar_transform_nd(signal)
        assert np.allclose(inverse_haar_transform_nd(coefficients), signal)

    def test_3d_roundtrip(self):
        rng = np.random.default_rng(1)
        signal = rng.normal(size=(4, 8, 4))
        assert np.allclose(inverse_haar_transform_nd(haar_transform_nd(signal)), signal)

    def test_energy_preservation_2d(self):
        rng = np.random.default_rng(2)
        signal = rng.normal(size=(16, 16))
        coefficients = haar_transform_nd(signal)
        assert float((signal ** 2).sum()) == pytest.approx(float((coefficients ** 2).sum()))

    def test_1d_matches_haar_transform(self):
        from repro.core.haar import haar_transform

        signal = np.arange(16, dtype=float)
        assert np.allclose(haar_transform_nd(signal), haar_transform(signal))

    def test_linearity_2d(self):
        """Linearity is what lets the paper's algorithms extend to multiple dimensions."""
        rng = np.random.default_rng(3)
        a = rng.normal(size=(8, 8))
        b = rng.normal(size=(8, 8))
        assert np.allclose(
            haar_transform_nd(a + 3 * b), haar_transform_nd(a) + 3 * haar_transform_nd(b)
        )

    def test_rejects_non_power_of_two_axis(self):
        with pytest.raises(InvalidDomainError):
            haar_transform_nd(np.zeros((8, 6)))

    def test_rejects_empty_shape(self):
        with pytest.raises(InvalidParameterError):
            haar_transform_nd(np.array(5.0))

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=10)
    def test_constant_image_has_one_nonzero_coefficient(self, seed):
        signal = np.full((8, 8), float(seed + 1))
        coefficients = haar_transform_nd(signal)
        assert np.count_nonzero(np.abs(coefficients) > 1e-9) == 1


class TestTopKNd:
    def test_top_k_selects_largest_magnitudes(self):
        coefficients = np.zeros((4, 4))
        coefficients[0, 0] = 10.0
        coefficients[1, 2] = -20.0
        coefficients[3, 3] = 5.0
        top = top_k_coefficients_nd(coefficients, 2)
        assert set(top) == {(0, 0), (1, 2)}

    def test_reconstruct_from_top_k_with_full_budget_is_exact(self):
        rng = np.random.default_rng(4)
        signal = rng.integers(0, 20, size=(8, 8)).astype(float)
        coefficients = haar_transform_nd(signal)
        top = top_k_coefficients_nd(coefficients, 64)
        assert np.allclose(reconstruct_from_top_k_nd(top, (8, 8)), signal)

    def test_sse_decreases_with_k_2d(self):
        rng = np.random.default_rng(5)
        signal = np.outer(1000.0 / np.arange(1, 17) ** 1.2, 1000.0 / np.arange(1, 17) ** 1.2)
        signal += rng.normal(scale=0.1, size=(16, 16))
        coefficients = haar_transform_nd(signal)
        errors = []
        for k in (1, 8, 64, 256):
            approximation = reconstruct_from_top_k_nd(
                top_k_coefficients_nd(coefficients, k), (16, 16)
            )
            errors.append(float(((approximation - signal) ** 2).sum()))
        assert errors == sorted(errors, reverse=True)
