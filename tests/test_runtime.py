"""Tests for the MapReduce execution engine (repro.mapreduce.runtime)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import JobConfigurationError
from repro.mapreduce.api import Mapper, MapperContext, Reducer, ReducerContext
from repro.mapreduce.cluster import MachineSpec, ClusterSpec
from repro.mapreduce.counters import CounterNames
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.job import DistributedCache, JobConfiguration, MapReduceJob
from repro.mapreduce.runtime import JobRunner


class CountMapper(Mapper):
    """Classic word-count mapper: emits (key, 1) per record."""

    def map(self, record, context):
        context.emit(record, 1)


class SumReducer(Reducer):
    """Classic word-count reducer: emits (key, sum of values)."""

    def reduce(self, key, values, context):
        context.emit(key, sum(values))


class StatefulMapper(Mapper):
    """Persists the number of records it saw, for cross-round state tests."""

    def setup(self, context):
        self._seen = 0

    def map(self, record, context):
        self._seen += 1

    def close(self, context):
        previous = context.load_state(default=0)
        context.save_state(previous + self._seen, size_bytes=8)
        context.emit(context.split_id, previous + self._seen)


class CacheEchoMapper(Mapper):
    """Emits the content of the distributed cache and a configuration value."""

    def close(self, context):
        context.emit("cache", tuple(context.distributed_cache.get("payload")))
        context.emit("conf", context.configuration.require("setting"))


class FirstValueReducer(Reducer):
    """Emits (key, first value) — used when values are non-numeric."""

    def reduce(self, key, values, context):
        context.emit(key, list(values)[0])


@pytest.fixture()
def small_cluster_4():
    machines = [MachineSpec(f"m{i}") for i in range(4)]
    return ClusterSpec(machines=machines, split_size_bytes=100)


@pytest.fixture()
def wordcount_hdfs():
    hdfs = HDFS(datanodes=["m0", "m1"])
    keys = np.array([1, 2, 2, 3, 3, 3, 4, 4, 4, 4] * 20)
    hdfs.create_file("/words", keys, record_size_bytes=4)
    return hdfs


class TestWordCount:
    def test_output_matches_exact_counts(self, wordcount_hdfs, small_cluster_4):
        runner = JobRunner(wordcount_hdfs, cluster=small_cluster_4)
        job = MapReduceJob(name="wc", input_path="/words",
                           mapper_class=CountMapper, reducer_class=SumReducer)
        result = runner.run(job)
        assert result.output_dict() == {1: 20, 2: 40, 3: 60, 4: 80}

    def test_counters_record_volumes(self, wordcount_hdfs, small_cluster_4):
        runner = JobRunner(wordcount_hdfs, cluster=small_cluster_4)
        job = MapReduceJob(name="wc", input_path="/words",
                           mapper_class=CountMapper, reducer_class=SumReducer)
        result = runner.run(job)
        counters = result.counters
        assert counters.get(CounterNames.MAP_INPUT_RECORDS) == 200
        assert counters.get(CounterNames.MAP_OUTPUT_RECORDS) == 200
        assert counters.get(CounterNames.MAP_INPUT_BYTES) == 800
        assert counters.get(CounterNames.HDFS_BYTES_READ) == 800
        assert counters.get(CounterNames.SHUFFLE_RECORDS) == 200
        # 4-byte key + 4-byte int value per pair.
        assert counters.get(CounterNames.SHUFFLE_BYTES) == 200 * 8
        assert counters.get(CounterNames.REDUCE_INPUT_RECORDS) == 200
        assert counters.get(CounterNames.REDUCE_INPUT_GROUPS) == 4
        assert counters.get(CounterNames.REDUCE_OUTPUT_RECORDS) == 4

    def test_number_of_mappers_equals_number_of_splits(self, wordcount_hdfs, small_cluster_4):
        runner = JobRunner(wordcount_hdfs, cluster=small_cluster_4)
        job = MapReduceJob(name="wc", input_path="/words",
                           mapper_class=CountMapper, reducer_class=SumReducer)
        result = runner.run(job)
        assert result.num_mappers == len(result.splits) == 8  # 800 bytes / 100-byte splits

    def test_combiner_reduces_shuffle_volume_but_not_result(self, wordcount_hdfs, small_cluster_4):
        runner = JobRunner(wordcount_hdfs, cluster=small_cluster_4)
        without = runner.run(MapReduceJob(name="wc", input_path="/words",
                                          mapper_class=CountMapper, reducer_class=SumReducer))
        with_combiner = runner.run(MapReduceJob(name="wc-c", input_path="/words",
                                                mapper_class=CountMapper,
                                                reducer_class=SumReducer,
                                                combiner=lambda key, values: sum(values)))
        assert with_combiner.output_dict() == without.output_dict()
        assert with_combiner.shuffle_bytes < without.shuffle_bytes
        # 8 splits x 4 distinct keys = 32 combined pairs.
        assert with_combiner.counters.get(CounterNames.SHUFFLE_RECORDS) == 32

    def test_multiple_reducers_partition_the_keys(self, wordcount_hdfs, small_cluster_4):
        runner = JobRunner(wordcount_hdfs, cluster=small_cluster_4)
        job = MapReduceJob(name="wc", input_path="/words",
                           mapper_class=CountMapper, reducer_class=SumReducer,
                           num_reducers=3, partitioner=lambda key, r: key % r)
        result = runner.run(job)
        assert result.output_dict() == {1: 20, 2: 40, 3: 60, 4: 80}
        assert result.num_reducers == 3

    def test_empty_input_raises(self, small_cluster_4):
        hdfs = HDFS()
        hdfs.create_file("/empty", [])
        runner = JobRunner(hdfs, cluster=small_cluster_4)
        job = MapReduceJob(name="wc", input_path="/empty",
                           mapper_class=CountMapper, reducer_class=SumReducer)
        with pytest.raises(JobConfigurationError):
            runner.run(job)


class TestSideChannelsAndState:
    def test_job_configuration_and_distributed_cache_reach_mappers(self, wordcount_hdfs,
                                                                    small_cluster_4):
        runner = JobRunner(wordcount_hdfs, cluster=small_cluster_4)
        cache = DistributedCache()
        cache.add("payload", [9, 8, 7])
        job = MapReduceJob(name="cache", input_path="/words",
                           mapper_class=CacheEchoMapper, reducer_class=FirstValueReducer,
                           configuration=JobConfiguration({"setting": 5}),
                           distributed_cache=cache, read_input=False)
        result = runner.run(job)
        # Every mapper saw the cache payload and the configuration value.
        assert result.output_dict()["cache"] == (9, 8, 7)
        assert result.output_dict()["conf"] == 5
        assert result.counters.get(CounterNames.REDUCE_INPUT_RECORDS) == 2 * result.num_mappers
        assert result.counters.get(CounterNames.DISTRIBUTED_CACHE_BYTES) == (
            cache.total_size_bytes() * small_cluster_4.num_workers
        )
        assert result.counters.get(CounterNames.JOB_CONFIGURATION_BYTES) > 0

    def test_read_input_false_skips_the_scan(self, wordcount_hdfs, small_cluster_4):
        runner = JobRunner(wordcount_hdfs, cluster=small_cluster_4)
        job = MapReduceJob(name="noscan", input_path="/words",
                           mapper_class=CountMapper, reducer_class=SumReducer,
                           read_input=False)
        result = runner.run(job)
        assert result.counters.get(CounterNames.MAP_INPUT_RECORDS) == 0
        assert result.counters.get(CounterNames.MAP_INPUT_BYTES) == 0
        assert result.output == []

    def test_state_persists_across_rounds_per_split(self, wordcount_hdfs, small_cluster_4):
        runner = JobRunner(wordcount_hdfs, cluster=small_cluster_4)
        job = MapReduceJob(name="stateful", input_path="/words",
                           mapper_class=StatefulMapper, reducer_class=SumReducer)
        first = runner.run(job)
        second = runner.run(job)
        per_split_records = 25  # 200 records over 8 splits
        assert all(value == per_split_records for value in first.output_dict().values())
        assert all(value == 2 * per_split_records for value in second.output_dict().values())

    def test_explicit_splits_keep_ids_stable(self, wordcount_hdfs, small_cluster_4):
        runner = JobRunner(wordcount_hdfs, cluster=small_cluster_4)
        splits = wordcount_hdfs.splits("/words", 200)
        job = MapReduceJob(name="wc", input_path="/words",
                           mapper_class=CountMapper, reducer_class=SumReducer)
        result = runner.run(job, splits=splits)
        assert result.num_mappers == len(splits) == 4

    def test_mapper_rng_is_deterministic_per_seed(self, wordcount_hdfs, small_cluster_4):
        class RandomEmitMapper(Mapper):
            def close(self, context):
                context.emit(context.split_id, float(context.rng.random()))

        job = MapReduceJob(name="rng", input_path="/words",
                           mapper_class=RandomEmitMapper, reducer_class=SumReducer,
                           read_input=False)
        first = JobRunner(wordcount_hdfs, cluster=small_cluster_4, seed=11).run(job)
        second = JobRunner(wordcount_hdfs, cluster=small_cluster_4, seed=11).run(job)
        third = JobRunner(wordcount_hdfs, cluster=small_cluster_4, seed=12).run(job)
        assert first.output == second.output
        assert first.output != third.output

    def test_communication_property_includes_side_channels(self, wordcount_hdfs, small_cluster_4):
        runner = JobRunner(wordcount_hdfs, cluster=small_cluster_4)
        cache = DistributedCache()
        cache.add("payload", list(range(100)))
        job = MapReduceJob(name="wc", input_path="/words",
                           mapper_class=CountMapper, reducer_class=SumReducer,
                           distributed_cache=cache)
        result = runner.run(job)
        assert result.communication_bytes > result.shuffle_bytes
