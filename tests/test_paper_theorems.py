"""Statistical checks of the paper's analytical results (Theorems 1-3, Corollary 1).

These tests simulate the two-level sampling pipeline at the estimator level
(without the MapReduce machinery, so hundreds of repetitions are cheap) and
verify the guarantees the paper proves:

* Theorem 1 / Corollary 1 — ``s_hat`` and ``v_hat`` are unbiased with bounded
  standard deviation (also covered in ``test_two_level_sampling``; here the
  full first+second level pipeline is exercised).
* Theorem 2 — the estimated wavelet coefficients ``w_hat_i`` are unbiased.
* Theorem 3 — the expected number of emitted pairs is O(sqrt(m)/eps).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.haar import basis_value, coefficients_for_key, haar_transform
from repro.sampling.estimators import first_level_probability
from repro.sampling.two_level import TwoLevelEstimator, second_level_emit

U = 64
M = 16
EPSILON = 0.05
SEED = 2024


def _dataset_frequencies(rng: np.random.Generator) -> np.ndarray:
    """A skewed frequency vector over [1, U] used by all checks."""
    ranks = np.arange(1, U + 1, dtype=float)
    frequencies = np.round(20_000.0 / ranks ** 1.1)
    rng.shuffle(frequencies)
    return frequencies


def _split_frequencies(frequencies: np.ndarray, rng: np.random.Generator) -> list:
    """Spread the global frequencies over M splits multinomially."""
    splits = []
    for key_index, frequency in enumerate(frequencies):
        counts = rng.multinomial(int(frequency), [1.0 / M] * M)
        splits.append(counts)
    # splits[key][split] -> per-split frequency of key.
    return np.array(splits)


def _one_trial(frequencies, per_split, probability, rng):
    """One end-to-end two-level sampling trial; returns the estimator."""
    estimator = TwoLevelEstimator(EPSILON, M, first_level_probability=probability)
    for split in range(M):
        # First level: binomial sampling of each key's occurrences in the split.
        sampled_counts = {}
        for key_index in range(U):
            count = rng.binomial(int(per_split[key_index][split]), probability)
            if count:
                sampled_counts[key_index + 1] = float(count)
        # Second level: the paper's thresholded emission.
        for emission in second_level_emit(sampled_counts, EPSILON, M, rng):
            estimator.observe_emission(emission)
    return estimator


@pytest.fixture(scope="module")
def pipeline():
    rng = np.random.default_rng(SEED)
    frequencies = _dataset_frequencies(rng)
    per_split = _split_frequencies(frequencies, rng)
    n = int(frequencies.sum())
    probability = first_level_probability(EPSILON, n)
    trials = [
        _one_trial(frequencies, per_split, probability, rng) for _ in range(150)
    ]
    return frequencies, n, probability, trials


class TestCorollary1:
    def test_frequency_estimates_are_unbiased(self, pipeline):
        frequencies, n, probability, trials = pipeline
        heavy_key = int(np.argmax(frequencies)) + 1
        estimates = np.array([t.estimate_frequency(heavy_key) for t in trials])
        standard_error = estimates.std() / np.sqrt(len(estimates))
        assert estimates.mean() == pytest.approx(frequencies[heavy_key - 1],
                                                 abs=4 * standard_error)

    def test_frequency_estimate_deviation_is_at_most_eps_n(self, pipeline):
        frequencies, n, probability, trials = pipeline
        for key in (int(np.argmax(frequencies)) + 1, 1, U // 2):
            estimates = np.array([t.estimate_frequency(key) for t in trials])
            # Corollary 1: sd <= eps * n (first plus second level, so allow 2x).
            assert estimates.std() <= 2 * EPSILON * n


class TestTheorem2:
    def test_wavelet_coefficient_estimates_are_unbiased(self, pipeline):
        frequencies, n, probability, trials = pipeline
        true_coefficients = haar_transform(frequencies)
        # The largest-magnitude detail coefficient (skip w_1, the total average).
        index = int(np.argmax(np.abs(true_coefficients[1:]))) + 2
        path_keys = [key for key in range(1, U + 1)
                     if index in coefficients_for_key(key, U)]
        estimates = []
        for trial in trials:
            estimate = sum(trial.estimate_frequency(key) * basis_value(index, key, U)
                           for key in path_keys)
            estimates.append(estimate)
        estimates = np.array(estimates)
        standard_error = estimates.std() / np.sqrt(len(estimates))
        assert estimates.mean() == pytest.approx(true_coefficients[index - 1],
                                                 abs=4 * standard_error)


class TestTheorem3:
    def test_expected_emissions_are_order_sqrt_m_over_eps(self):
        rng = np.random.default_rng(7)
        # Worst-case-ish: the sample is spread over many distinct keys.
        sample_per_split = int(1 / (EPSILON ** 2 * M))
        total_pairs = []
        for _ in range(50):
            pairs = 0
            for _split in range(M):
                keys = rng.integers(1, 10_000, size=sample_per_split)
                counts = {}
                for key in keys:
                    counts[int(key)] = counts.get(int(key), 0) + 1
                pairs += sum(1 for _ in second_level_emit(counts, EPSILON, M, rng))
            total_pairs.append(pairs)
        bound = 2 * np.sqrt(M) / EPSILON  # exact-pair term + expected NULL term
        assert np.mean(total_pairs) <= bound * 1.1

    def test_emissions_scale_like_sqrt_m_not_m(self):
        rng = np.random.default_rng(11)

        def expected_pairs(m: int) -> float:
            sample_per_split = int(1 / (EPSILON ** 2 * m))
            totals = []
            for _ in range(30):
                pairs = 0
                for _split in range(m):
                    keys = rng.integers(1, 10_000, size=sample_per_split)
                    counts = {}
                    for key in keys:
                        counts[int(key)] = counts.get(int(key), 0) + 1
                    pairs += sum(1 for _ in second_level_emit(counts, EPSILON, m, rng))
                totals.append(pairs)
            return float(np.mean(totals))

        four_times_more_splits = expected_pairs(64) / expected_pairs(16)
        # sqrt(64/16) = 2; linear-in-m behaviour would give 4.
        assert four_times_more_splits < 3.0
