"""Tests for the persistent synopsis store (repro.serving.store)."""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.algorithms import TwoLevelSampling
from repro.core.histogram import WaveletHistogram
from repro.errors import (
    InvalidParameterError,
    SynopsisIntegrityError,
    SynopsisNotFoundError,
)
from repro.mapreduce.hdfs import HDFS
from repro.serving.store import (
    PAYLOAD_FILENAME,
    SynopsisStore,
    deserialize_histogram,
    serialize_histogram,
)


def _histogram(u: int = 128, k: int = 20, seed: int = 5) -> WaveletHistogram:
    rng = np.random.default_rng(seed)
    dense = rng.poisson(12.0, u).astype(float)
    return WaveletHistogram.from_dense(dense, k)


class TestByteFormat:
    def test_serialization_is_deterministic(self):
        histogram = _histogram()
        assert serialize_histogram(histogram) == serialize_histogram(histogram)

    def test_round_trip_is_exact(self):
        histogram = _histogram()
        payload = serialize_histogram(histogram)
        loaded = deserialize_histogram(payload)
        assert loaded.u == histogram.u and loaded.k == histogram.k
        assert loaded.coefficients == histogram.coefficients
        # Reserialising the reload is byte-identical to the original payload.
        assert serialize_histogram(loaded) == payload

    def test_rejects_truncated_and_corrupt_payloads(self):
        payload = serialize_histogram(_histogram())
        with pytest.raises(SynopsisIntegrityError):
            deserialize_histogram(payload[:-8])
        with pytest.raises(SynopsisIntegrityError):
            deserialize_histogram(b"NOTMAGIC" + payload[8:])
        with pytest.raises(SynopsisIntegrityError):
            deserialize_histogram(payload + b"\x00")

    def test_malformed_header_fields_raise_integrity_errors(self):
        import struct

        from repro.serving.store import MAGIC

        def payload_with_header(header: bytes) -> bytes:
            return MAGIC + struct.pack("<I", len(header)) + header

        for header in (b'{"u": 8, "k": "x", "count": 0}',
                       b'{"u": 8, "count": 0}',
                       b'{"u": "?", "k": 1, "count": 0}',
                       b"not json at all.."):
            with pytest.raises(SynopsisIntegrityError):
                deserialize_histogram(payload_with_header(header))

    def test_none_k_round_trips(self):
        histogram = WaveletHistogram.from_coefficients({1: 2.0}, 8, k=None)
        loaded = deserialize_histogram(serialize_histogram(histogram))
        assert loaded.k is None and loaded.coefficients == {1: 2.0}


class TestStoreRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        store = SynopsisStore(str(tmp_path / "store"))
        histogram = _histogram()
        metadata = store.save("orders", histogram, algorithm="Send-V", seed=3,
                              build={"communication_bytes": 123.0})
        assert metadata.version == 1
        assert metadata.coefficient_count == len(histogram)
        assert metadata.build["communication_bytes"] == 123.0
        loaded = store.load("orders")
        assert loaded.metadata == metadata
        assert loaded.histogram.coefficients == histogram.coefficients
        with open(os.path.join(loaded.directory, PAYLOAD_FILENAME), "rb") as handle:
            assert hashlib.sha256(handle.read()).hexdigest() == metadata.checksum_sha256

    def test_versions_are_append_only(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        first, second = _histogram(seed=1), _histogram(seed=2)
        store.save("d", first, algorithm="A")
        metadata = store.save("d", second, algorithm="B")
        assert metadata.version == 2
        assert store.versions("d") == [1, 2]
        assert store.latest_version("d") == 2
        assert store.load("d").histogram.coefficients == second.coefficients
        assert store.load("d", version=1).histogram.coefficients == first.coefficients

    def test_loading_is_lazy_until_first_access(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        store.save("lazy", _histogram())
        loaded = store.load("lazy")
        assert not loaded.loaded
        # Removing the payload after load() proves nothing was read yet...
        os.remove(os.path.join(loaded.directory, PAYLOAD_FILENAME))
        with pytest.raises(SynopsisNotFoundError):
            _ = loaded.histogram
        # ...and a fresh handle with the payload present faults it in once.
        store.save("lazy2", _histogram())
        handle = store.load("lazy2")
        _ = handle.histogram
        assert handle.loaded

    def test_checksum_mismatch_is_detected(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        store.save("tampered", _histogram())
        loaded = store.load("tampered")
        path = os.path.join(loaded.directory, PAYLOAD_FILENAME)
        with open(path, "r+b") as handle:
            handle.seek(-4, os.SEEK_END)
            handle.write(b"\xff\xff\xff\xff")
        with pytest.raises(SynopsisIntegrityError):
            _ = loaded.histogram

    def test_unknown_name_and_version(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        with pytest.raises(SynopsisNotFoundError):
            store.load("missing")
        store.save("present", _histogram())
        with pytest.raises(SynopsisNotFoundError):
            store.load("present", version=9)

    def test_rejects_bad_names(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        for bad in ("", "../escape", "a/b", ".hidden", "spa ce"):
            with pytest.raises(InvalidParameterError):
                store.save(bad, _histogram())

    def test_catalog_listing(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        store.save("b-synopsis", _histogram(), algorithm="B")
        store.save("a-synopsis", _histogram(), algorithm="A")
        store.save("a-synopsis", _histogram(seed=9), algorithm="A")
        assert store.names() == ["a-synopsis", "b-synopsis"]
        entries = {metadata.name: metadata for metadata in store.entries()}
        assert entries["a-synopsis"].version == 2
        with open(os.path.join(store.root, "catalog.json"), encoding="utf-8") as handle:
            catalog = json.load(handle)
        assert catalog["a-synopsis"]["latest"] == 2
        assert catalog["a-synopsis"]["versions"] == [1, 2]

    def test_catalog_failure_does_not_fail_the_save(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        # A directory squatting on catalog.json makes the summary unwritable;
        # the save must still publish the version.
        os.makedirs(os.path.join(store.root, "catalog.json"))
        metadata = store.save("resilient", _histogram())
        assert metadata.version == 1
        assert store.load("resilient").histogram.coefficients

    def test_corrupt_sibling_metadata_does_not_brick_saves(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        store.save("a", _histogram())
        meta_path = os.path.join(store.root, "a", "v00001", "meta.json")
        with open(meta_path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        # Saving an unrelated name still publishes (the catalog is derived
        # data), and loading the corrupt entry raises the contract error.
        assert store.save("b", _histogram()).version == 1
        assert store.load("b").histogram.coefficients
        with pytest.raises(SynopsisIntegrityError):
            store.load("a")

    def test_engine_over_stored_synopsis(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        histogram = _histogram()
        store.save("served", histogram)
        engine = store.load("served").engine(cache_size=16)
        assert engine.range_sum_many([1], [histogram.u])[0] == pytest.approx(
            histogram.range_sum_scalar(1, histogram.u), abs=1e-9
        )


class TestAlgorithmRunEmitsStoreEntries:
    def test_run_with_store_persists_and_reports(self, tmp_path,
                                                 hdfs_with_small_dataset,
                                                 small_dataset, small_cluster):
        store = SynopsisStore(str(tmp_path))
        algorithm = TwoLevelSampling(small_dataset.u, 16, epsilon=0.02)
        result = algorithm.run(hdfs_with_small_dataset, "/data/input",
                               cluster=small_cluster, seed=11, store=store)
        entry = result.details["store_entry"]
        assert entry["name"] == "TwoLevel-S" and entry["version"] == 1
        metadata = store.load("TwoLevel-S").metadata
        assert metadata.algorithm == "TwoLevel-S"
        assert metadata.seed == 11
        assert metadata.u == small_dataset.u and metadata.k == 16
        assert metadata.build["rounds"] == result.num_rounds
        assert metadata.build["communication_bytes"] == result.communication_bytes
        assert metadata.build["counters"]  # build counters travel with the synopsis
        stored = store.load("TwoLevel-S").histogram
        assert stored.coefficients == result.histogram.coefficients

    def test_run_with_store_name_override(self, tmp_path, hdfs_with_small_dataset,
                                          small_dataset, small_cluster):
        store = SynopsisStore(str(tmp_path))
        algorithm = TwoLevelSampling(small_dataset.u, 8, epsilon=0.02)
        result = algorithm.run(hdfs_with_small_dataset, "/data/input",
                               cluster=small_cluster, store=store,
                               store_name="catalog-entry")
        assert result.details["store_entry"]["name"] == "catalog-entry"
        assert store.names() == ["catalog-entry"]


class TestCrossProcessServing:
    def test_persisted_synopsis_serves_in_a_fresh_process(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        histogram = _histogram(u=512, k=32)
        store.save("xproc", histogram, algorithm="exact")
        los, his = [1, 17, 100], [512, 40, 400]
        expected = histogram.range_sum_many(los, his)

        script = (
            "import json, sys, numpy as np\n"
            "from repro.serving.store import SynopsisStore\n"
            "from repro.serving.server import QueryServer\n"
            "server = QueryServer(SynopsisStore(sys.argv[1]))\n"
            "result = server.range_sums('xproc', [1, 17, 100], [512, 40, 400])\n"
            "print(json.dumps(list(result)))\n"
        )
        environment = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        environment["PYTHONPATH"] = src + os.pathsep + environment.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, "-c", script, store.root],
            capture_output=True, text=True, env=environment, check=True,
        )
        answers = np.array(json.loads(completed.stdout))
        np.testing.assert_allclose(answers, expected, rtol=0.0, atol=1e-9)
