"""MemoryBackend vs DirectoryBackend: one catalog contract, two mechanisms.

The store layer's guarantees — deterministic WHSYN001 bytes, sha256 integrity
verification, append-only versioning, lazy loading, version pinning — must
hold identically on both backends, and a synopsis saved through either must
be *byte-identical* (same checksum, same payload) to the other.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.histogram import WaveletHistogram
from repro.errors import (
    InvalidParameterError,
    SynopsisIntegrityError,
    SynopsisNotFoundError,
)
from repro.mapreduce.executor import ParallelExecutor
from repro.service import RuntimeProfile, SynopsisService
from repro.serving.backends import DirectoryBackend, MemoryBackend
from repro.serving.server import QueryServer
from repro.serving.store import SynopsisStore, serialize_histogram
from repro.serving.workload import WorkloadGenerator


def _histogram(u: int = 128, k: int = 20, seed: int = 5) -> WaveletHistogram:
    rng = np.random.default_rng(seed)
    dense = rng.poisson(12.0, u).astype(float)
    return WaveletHistogram.from_dense(dense, k)


@pytest.fixture()
def memory_store():
    return SynopsisStore.in_memory()


class TestMemoryRoundTrip:
    def test_save_load_round_trip(self, memory_store):
        histogram = _histogram()
        metadata = memory_store.save("orders", histogram, algorithm="Send-V",
                                     seed=3, build={"rounds": 1})
        assert metadata.version == 1
        loaded = memory_store.load("orders")
        assert loaded.metadata == metadata
        assert not loaded.loaded  # metadata only until first access
        assert loaded.histogram.coefficients == histogram.coefficients
        assert loaded.loaded
        assert loaded.directory is None  # diskless backend has no location

    def test_versions_append_only_and_pinnable(self, memory_store):
        first, second = _histogram(seed=1), _histogram(seed=2)
        memory_store.save("d", first, algorithm="A")
        metadata = memory_store.save("d", second, algorithm="B")
        assert metadata.version == 2
        assert memory_store.versions("d") == [1, 2]
        assert memory_store.latest_version("d") == 2
        assert memory_store.load("d").histogram.coefficients == second.coefficients
        assert memory_store.load("d", version=1).histogram.coefficients == \
            first.coefficients

    def test_unknown_name_and_version(self, memory_store):
        with pytest.raises(SynopsisNotFoundError):
            memory_store.load("missing")
        memory_store.save("present", _histogram())
        with pytest.raises(SynopsisNotFoundError):
            memory_store.load("present", version=9)

    def test_rejects_bad_names(self, memory_store):
        for bad in ("", "../escape", "a/b", ".hidden", "spa ce"):
            with pytest.raises(InvalidParameterError):
                memory_store.save(bad, _histogram())

    def test_publish_refuses_existing_version(self, memory_store, tmp_path):
        payload = serialize_histogram(_histogram())
        for backend in (memory_store.backend, DirectoryBackend(str(tmp_path))):
            backend.publish("dup", 1, "{}", payload)
            with pytest.raises(InvalidParameterError):
                backend.publish("dup", 1, "{}", payload)

    def test_catalog_text_mirrors_catalog_json(self, memory_store):
        memory_store.save("b-syn", _histogram(), algorithm="B")
        memory_store.save("a-syn", _histogram(), algorithm="A")
        memory_store.save("a-syn", _histogram(seed=9), algorithm="A")
        assert memory_store.names() == ["a-syn", "b-syn"]
        catalog = json.loads(memory_store.backend.catalog_text)
        assert catalog["a-syn"]["latest"] == 2
        assert catalog["a-syn"]["versions"] == [1, 2]

    def test_root_is_none_on_memory_backends(self, memory_store, tmp_path):
        assert memory_store.root is None
        assert SynopsisStore(str(tmp_path)).root == str(tmp_path)
        with pytest.raises(InvalidParameterError):
            SynopsisStore()
        with pytest.raises(InvalidParameterError):
            SynopsisStore(str(tmp_path), backend=MemoryBackend())


class TestCrossBackendEquivalence:
    def test_payload_bytes_and_checksums_are_identical(self, memory_store, tmp_path):
        directory_store = SynopsisStore(str(tmp_path / "store"))
        histogram = _histogram(u=512, k=24)
        in_memory = memory_store.save("same", histogram, algorithm="exact")
        on_disk = directory_store.save("same", histogram, algorithm="exact")
        assert in_memory.checksum_sha256 == on_disk.checksum_sha256
        assert in_memory.payload_bytes == on_disk.payload_bytes
        assert memory_store.backend.read_payload("same", 1) == \
            directory_store.backend.read_payload("same", 1)

    def test_integrity_mismatch_detected_on_memory(self, memory_store):
        memory_store.save("tampered", _histogram())
        backend = memory_store.backend
        metadata_text, payload = backend._entries["tampered"][1]
        backend._entries["tampered"][1] = (
            metadata_text, payload[:-4] + b"\xff\xff\xff\xff"
        )
        with pytest.raises(SynopsisIntegrityError, match="checksum mismatch"):
            _ = memory_store.load("tampered").histogram

    def test_version_pinning_and_refresh_on_memory(self, memory_store):
        server = QueryServer(memory_store)
        first_histogram = _histogram(u=256, seed=31)
        memory_store.save("pin", first_histogram, algorithm="exact")
        first = server.range_sums("pin", [1], [256])
        memory_store.save("pin", _histogram(u=256, seed=32), algorithm="exact")
        # Pinned at v1 until refreshed...
        assert np.array_equal(server.range_sums("pin", [1], [256]), first)
        server.refresh()
        v2 = server.range_sums("pin", [1], [256])
        assert not np.array_equal(v2, first)
        # ...and the explicit version stays addressable after the refresh.
        assert np.array_equal(server.range_sums("pin", [1], [256], version=1), first)


class TestFanoutAcrossBackendsAndExecutors:
    """The acceptance matrix: {serial, parallel} x {directory, memory}."""

    def _populated(self, store: SynopsisStore) -> SynopsisStore:
        rng = np.random.default_rng(77)
        for name in ("web", "orders", "clicks"):
            dense = rng.poisson(25.0, 1024).astype(float)
            store.save(name, WaveletHistogram.from_dense(dense, 32),
                       algorithm="exact")
        return store

    def test_answers_are_bit_identical_everywhere(self, tmp_path):
        names = ["web", "orders", "clicks"]
        workload = WorkloadGenerator(1024, seed=55).generate(4_000, "mixed")
        directory_store = self._populated(SynopsisStore(str(tmp_path / "fan")))
        memory_store = self._populated(SynopsisStore.in_memory())

        executor = ParallelExecutor(max_workers=2)
        try:
            answers = {}
            for store_name, store in (("directory", directory_store),
                                      ("memory", memory_store)):
                for executor_name, profile in (
                    ("serial", RuntimeProfile()),
                    ("parallel", RuntimeProfile(executor=executor)),
                ):
                    service = SynopsisService(store=store, profile=profile,
                                              shard_size=512)
                    answers[(store_name, executor_name)] = \
                        service.query_workload(names, workload)
        finally:
            executor.close()

        reference = answers[("directory", "serial")]
        for combination, result in answers.items():
            for name in names:
                assert np.array_equal(result[name], reference[name]), (
                    f"fan-out diverged for {name} on {combination}"
                )
