"""Tests for record readers and input formats (repro.mapreduce.inputformat)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError, SamplingError
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.inputformat import (
    RandomSamplingInputFormat,
    RandomSamplingRecordReader,
    SequentialInputFormat,
    SequentialRecordReader,
)


@pytest.fixture()
def hdfs_file_and_split():
    hdfs = HDFS()
    hdfs_file = hdfs.create_file("/data", np.arange(1, 1001), record_size_bytes=4)
    split = hdfs.splits("/data", split_size_bytes=2000)[1]  # records 500..999
    return hdfs_file, split


class TestSequentialReader:
    def test_reads_every_record_in_order(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        reader = SequentialRecordReader(hdfs_file, split)
        records = list(reader)
        assert records == list(range(501, 1001))
        assert reader.records_read == 500
        assert reader.bytes_read == 2000

    def test_split_property(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        assert SequentialRecordReader(hdfs_file, split).split is split

    def test_input_format_creates_reader(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        reader = SequentialInputFormat().create_reader(hdfs_file, split)
        assert isinstance(reader, SequentialRecordReader)


class TestRandomSamplingReader:
    def test_samples_expected_number_of_records(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        reader = RandomSamplingRecordReader(hdfs_file, split, 0.1,
                                            rng=np.random.default_rng(0))
        records = list(reader)
        assert len(records) == 50
        assert reader.records_read == 50
        assert reader.bytes_read == 50 * 4

    def test_samples_without_replacement_and_within_split(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        reader = RandomSamplingRecordReader(hdfs_file, split, 0.2,
                                            rng=np.random.default_rng(1))
        records = list(reader)
        assert len(records) == len(set(records))  # keys are unique in this file
        assert all(501 <= record <= 1000 for record in records)

    def test_full_probability_reads_whole_split(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        reader = RandomSamplingRecordReader(hdfs_file, split, 1.0,
                                            rng=np.random.default_rng(2))
        assert sorted(list(reader)) == list(range(501, 1001))

    def test_deterministic_given_rng(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        first = list(RandomSamplingRecordReader(hdfs_file, split, 0.05,
                                                rng=np.random.default_rng(42)))
        second = list(RandomSamplingRecordReader(hdfs_file, split, 0.05,
                                                 rng=np.random.default_rng(42)))
        assert first == second

    def test_invalid_probability_raises(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        with pytest.raises(SamplingError):
            RandomSamplingRecordReader(hdfs_file, split, 0.0)
        with pytest.raises(SamplingError):
            RandomSamplingRecordReader(hdfs_file, split, 1.5)

    def test_input_format_validation_and_creation(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        with pytest.raises(InvalidParameterError):
            RandomSamplingInputFormat(0.0)
        input_format = RandomSamplingInputFormat(0.25)
        assert input_format.sample_probability == 0.25
        reader = input_format.create_reader(hdfs_file, split, rng=np.random.default_rng(3))
        assert isinstance(reader, RandomSamplingRecordReader)
        assert reader.sample_probability == 0.25
