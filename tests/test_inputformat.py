"""Tests for record readers and input formats (repro.mapreduce.inputformat)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidParameterError, SamplingError
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.inputformat import (
    RandomSamplingInputFormat,
    RandomSamplingRecordReader,
    SequentialInputFormat,
    SequentialRecordReader,
)


@pytest.fixture()
def hdfs_file_and_split():
    hdfs = HDFS()
    hdfs_file = hdfs.create_file("/data", np.arange(1, 1001), record_size_bytes=4)
    split = hdfs.splits("/data", split_size_bytes=2000)[1]  # records 500..999
    return hdfs_file, split


class TestSequentialReader:
    def test_reads_every_record_in_order(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        reader = SequentialRecordReader(hdfs_file, split)
        records = list(reader)
        assert records == list(range(501, 1001))
        assert reader.records_read == 500
        assert reader.bytes_read == 2000

    def test_split_property(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        assert SequentialRecordReader(hdfs_file, split).split is split

    def test_input_format_creates_reader(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        reader = SequentialInputFormat().create_reader(hdfs_file, split)
        assert isinstance(reader, SequentialRecordReader)

    def test_read_batch_matches_iteration(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        batch_reader = SequentialRecordReader(hdfs_file, split)
        keys = batch_reader.read_batch()
        assert keys.dtype == np.int64
        assert keys.tolist() == list(SequentialRecordReader(hdfs_file, split))
        # Identical accounting on either access mode.
        assert batch_reader.records_read == 500
        assert batch_reader.bytes_read == 2000


class TestRandomSamplingReader:
    def test_samples_expected_number_of_records(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        reader = RandomSamplingRecordReader(hdfs_file, split, 0.1,
                                            rng=np.random.default_rng(0))
        records = list(reader)
        assert len(records) == 50
        assert reader.records_read == 50
        assert reader.bytes_read == 50 * 4

    def test_samples_without_replacement_and_within_split(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        reader = RandomSamplingRecordReader(hdfs_file, split, 0.2,
                                            rng=np.random.default_rng(1))
        records = list(reader)
        assert len(records) == len(set(records))  # keys are unique in this file
        assert all(501 <= record <= 1000 for record in records)

    def test_full_probability_reads_whole_split(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        reader = RandomSamplingRecordReader(hdfs_file, split, 1.0,
                                            rng=np.random.default_rng(2))
        assert sorted(list(reader)) == list(range(501, 1001))

    def test_deterministic_given_rng(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        first = list(RandomSamplingRecordReader(hdfs_file, split, 0.05,
                                                rng=np.random.default_rng(42)))
        second = list(RandomSamplingRecordReader(hdfs_file, split, 0.05,
                                                 rng=np.random.default_rng(42)))
        assert first == second

    def test_invalid_probability_raises(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        with pytest.raises(SamplingError):
            RandomSamplingRecordReader(hdfs_file, split, 0.0)
        with pytest.raises(SamplingError):
            RandomSamplingRecordReader(hdfs_file, split, 1.5)

    def test_read_batch_matches_iteration_including_rng_stream(self, hdfs_file_and_split):
        """Batch mode must draw the same sample as iteration, from the same RNG state."""
        hdfs_file, split = hdfs_file_and_split
        for probability in (0.05, 0.3, 1.0):
            batch_reader = RandomSamplingRecordReader(hdfs_file, split, probability,
                                                      rng=np.random.default_rng(7))
            scalar_reader = RandomSamplingRecordReader(hdfs_file, split, probability,
                                                       rng=np.random.default_rng(7))
            keys = batch_reader.read_batch()
            assert keys.tolist() == list(scalar_reader)
            assert batch_reader.records_read == scalar_reader.records_read
            assert batch_reader.bytes_read == scalar_reader.bytes_read

    def test_read_batch_empty_sample_consumes_no_rng(self, hdfs_file_and_split):
        """A rounds-to-zero sample must leave the task RNG untouched (both modes)."""
        hdfs_file, split = hdfs_file_and_split
        probability = 1e-6  # round(p * 500) == 0
        rng_batch = np.random.default_rng(3)
        rng_iter = np.random.default_rng(3)
        assert RandomSamplingRecordReader(
            hdfs_file, split, probability, rng=rng_batch).read_batch().size == 0
        assert list(RandomSamplingRecordReader(
            hdfs_file, split, probability, rng=rng_iter)) == []
        untouched = np.random.default_rng(3)
        assert rng_batch.random() == rng_iter.random() == untouched.random()

    def test_base_reader_read_batch_materialises_the_iterator(self, hdfs_file_and_split):
        """A custom reader that only implements __iter__ still supports batch mode."""
        from repro.mapreduce.inputformat import RecordReader

        class EveryOtherReader(RecordReader):
            def __iter__(self):
                keys = self._file.read(self._split.start, self._split.length)
                for key in keys[::2]:
                    self.records_read += 1
                    yield int(key)

        hdfs_file, split = hdfs_file_and_split
        batch = EveryOtherReader(hdfs_file, split).read_batch()
        assert batch.tolist() == list(EveryOtherReader(hdfs_file, split))

    def test_input_format_validation_and_creation(self, hdfs_file_and_split):
        hdfs_file, split = hdfs_file_and_split
        with pytest.raises(InvalidParameterError):
            RandomSamplingInputFormat(0.0)
        input_format = RandomSamplingInputFormat(0.25)
        assert input_format.sample_probability == 0.25
        reader = input_format.create_reader(hdfs_file, split, rng=np.random.default_rng(3))
        assert isinstance(reader, RandomSamplingRecordReader)
        assert reader.sample_probability == 0.25
