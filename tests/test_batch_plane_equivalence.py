"""Property suite: the batch data plane is bit-identical to the records plane.

For every one of the seven algorithms, over hypothesis-generated key streams,
the full ``ExecutionOutcome`` — histogram coefficients *and* merged counter
totals, plus per-round outputs and shuffle bytes — must be exactly equal
across the four combinations {batch, records} x {serial, parallel}.  This is
the contract that lets the runtime default to the columnar fast path: any
divergence in a vectorised mapper, the batched counter charging, the sharded
shuffle routing, the columnar reduce grouping, or the batch readers' RNG
consumption shows up here as a float, count or ordering diff.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    BasicSampling,
    HWTopk,
    ImprovedSampling,
    SendCoef,
    SendSketch,
    SendV,
    TwoLevelSampling,
)
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.executor import ParallelExecutor, SerialExecutor
from repro.mapreduce.hdfs import HDFS

U = 64
K = 5
EPSILON = 0.05
SEED = 13

ALGORITHM_FACTORIES = {
    "Send-V": lambda: SendV(U, K),
    "Send-V+combine": lambda: SendV(U, K, use_combiner=True),
    "Send-V+3reducers": lambda: SendV(U, K, num_reducers=3),
    "Send-Coef": lambda: SendCoef(U, K),
    "H-WTopk": lambda: HWTopk(U, K),
    "Send-Sketch": lambda: SendSketch(U, K, bytes_per_level=1024),
    "Basic-S": lambda: BasicSampling(U, K, epsilon=EPSILON),
    "Improved-S": lambda: ImprovedSampling(U, K, epsilon=EPSILON),
    "TwoLevel-S": lambda: TwoLevelSampling(U, K, epsilon=EPSILON),
}

# Key streams over [1, U]: skewed towards repeated small keys (like the Zipf
# workloads) but free to produce any shape, including single-key and
# all-distinct streams.
key_streams = st.lists(
    st.integers(min_value=1, max_value=U), min_size=1, max_size=400
)


@pytest.fixture(scope="module")
def parallel_executor():
    """One process pool shared by the whole module (start-up amortised)."""
    executor = ParallelExecutor(max_workers=2)
    yield executor
    executor.close()


def _run(factory, keys, executor, data_plane):
    hdfs = HDFS()
    hdfs.create_file("/input", np.asarray(keys, dtype=np.int64))
    cluster = paper_cluster(split_size_bytes=max(4, (len(keys) * 4) // 4))
    return factory().run(hdfs, "/input", cluster=cluster, seed=SEED,
                         executor=executor, data_plane=data_plane)


def _assert_identical(reference, other, label):
    assert other.histogram.coefficients == reference.histogram.coefficients, label
    assert other.counters.as_dict() == reference.counters.as_dict(), label
    assert other.num_rounds == reference.num_rounds, label
    for reference_round, other_round in zip(reference.rounds, other.rounds):
        assert other_round.output == reference_round.output, label
        assert other_round.shuffle_bytes == reference_round.shuffle_bytes, label


@pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(keys=key_streams)
def test_planes_and_executors_are_bit_identical(name, parallel_executor, keys):
    factory = ALGORITHM_FACTORIES[name]
    reference = _run(factory, keys, SerialExecutor(), "records")
    for data_plane in ("batch", "records"):
        for executor_name, executor in (("serial", SerialExecutor()),
                                        ("parallel", parallel_executor)):
            if data_plane == "records" and executor_name == "serial":
                continue  # that is the reference itself
            outcome = _run(factory, keys, executor, data_plane)
            _assert_identical(reference, outcome,
                              f"{name} diverged on {data_plane}/{executor_name}")


def test_non_batch_mapper_falls_back_to_records_path():
    """A plain Mapper job runs on the batch plane via the reference loop."""
    from repro.mapreduce.api import Mapper, Reducer
    from repro.mapreduce.job import MapReduceJob
    from repro.mapreduce.runtime import JobRunner

    class PlainMapper(Mapper):
        def map(self, record, context):
            context.emit(record, 1)

    class SumReducer(Reducer):
        def reduce(self, key, values, context):
            context.emit(key, sum(values))

    results = {}
    for data_plane in ("batch", "records"):
        hdfs = HDFS()
        hdfs.create_file("/input", np.arange(1, 101) % 7 + 1)
        runner = JobRunner(hdfs, cluster=paper_cluster(split_size_bytes=100),
                           data_plane=data_plane)
        job = MapReduceJob(name="wc", input_path="/input",
                           mapper_class=PlainMapper, reducer_class=SumReducer)
        results[data_plane] = runner.run(job)
    assert results["batch"].output == results["records"].output
    assert (results["batch"].counters.as_dict()
            == results["records"].counters.as_dict())
