"""Tests for the sparse frequency vector (repro.core.frequency)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frequency import FrequencyVector, frequency_vector_from_keys
from repro.errors import InvalidDomainError, KeyOutOfDomainError


class TestFrequencyVectorBasics:
    def test_empty_vector(self):
        vector = FrequencyVector(16)
        assert vector.total_count == 0
        assert vector.distinct_keys == 0
        assert len(vector) == 0
        assert vector.get(5) == 0.0

    def test_add_and_get(self):
        vector = FrequencyVector(16)
        vector.add(3)
        vector.add(3, 2)
        vector.add(10, 5)
        assert vector.get(3) == 3
        assert vector.get(10) == 5
        assert vector.total_count == 8
        assert vector.distinct_keys == 2

    def test_add_negative_delta_removes_zeroed_keys(self):
        vector = FrequencyVector(16, {4: 2.0})
        vector.add(4, -2)
        assert vector.distinct_keys == 0
        assert 4 not in vector.counts

    def test_explicit_zero_counts_are_dropped_on_construction(self):
        vector = FrequencyVector(16, {1: 0.0, 2: 3.0})
        assert vector.counts == {2: 3.0}

    def test_rejects_invalid_domain(self):
        with pytest.raises(InvalidDomainError):
            FrequencyVector(12)

    def test_rejects_out_of_domain_keys(self):
        with pytest.raises(KeyOutOfDomainError):
            FrequencyVector(16, {17: 1.0})
        vector = FrequencyVector(16)
        with pytest.raises(KeyOutOfDomainError):
            vector.add(0)
        with pytest.raises(KeyOutOfDomainError):
            vector.get(17)

    def test_equality(self):
        assert FrequencyVector(8, {1: 2.0}) == FrequencyVector(8, {1: 2.0})
        assert FrequencyVector(8, {1: 2.0}) != FrequencyVector(8, {1: 3.0})
        assert FrequencyVector(8) != FrequencyVector(16)


class TestFrequencyVectorOperations:
    def test_merge(self):
        a = FrequencyVector(16, {1: 2.0, 3: 1.0})
        b = FrequencyVector(16, {3: 4.0, 5: 7.0})
        merged = a.merge(b)
        assert merged.get(1) == 2
        assert merged.get(3) == 5
        assert merged.get(5) == 7
        # The originals are untouched.
        assert a.get(3) == 1
        assert b.get(3) == 4

    def test_merge_rejects_mismatched_domains(self):
        with pytest.raises(KeyOutOfDomainError):
            FrequencyVector(16).merge(FrequencyVector(32))

    def test_scale(self):
        vector = FrequencyVector(8, {2: 3.0})
        scaled = vector.scale(4.0)
        assert scaled.get(2) == 12
        assert vector.get(2) == 3

    def test_dense_roundtrip(self):
        vector = FrequencyVector(8, {1: 2.0, 8: 5.0})
        dense = vector.to_dense()
        assert dense.shape == (8,)
        assert dense[0] == 2 and dense[7] == 5
        assert FrequencyVector.from_dense(dense) == vector

    def test_energy(self):
        vector = FrequencyVector(8, {1: 3.0, 2: 4.0})
        assert vector.energy() == pytest.approx(25.0)

    def test_items_iterates_nonzero_entries(self):
        vector = FrequencyVector(8, {1: 2.0, 4: 1.0})
        assert dict(vector.items()) == {1: 2.0, 4: 1.0}


class TestFrequencyVectorFromKeys:
    def test_counts_occurrences(self):
        vector = frequency_vector_from_keys([1, 1, 2, 5, 5, 5], 8)
        assert vector.get(1) == 2
        assert vector.get(2) == 1
        assert vector.get(5) == 3
        assert vector.total_count == 6

    def test_rejects_out_of_domain(self):
        with pytest.raises(KeyOutOfDomainError):
            frequency_vector_from_keys([1, 9], 8)

    def test_matches_numpy_bincount(self):
        rng = np.random.default_rng(5)
        keys = rng.integers(1, 65, size=5000)
        vector = frequency_vector_from_keys((int(k) for k in keys), 64)
        counts = np.bincount(keys, minlength=65)
        for key in range(1, 65):
            assert vector.get(key) == counts[key]

    @given(st.lists(st.integers(min_value=1, max_value=32), max_size=200))
    @settings(max_examples=50)
    def test_total_count_equals_number_of_keys(self, keys):
        vector = frequency_vector_from_keys(keys, 32)
        assert vector.total_count == len(keys)
        assert vector.distinct_keys == len(set(keys))
