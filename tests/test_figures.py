"""Tests for the per-figure experiment drivers (repro.experiments.figures).

These run at the ``quick`` configuration so the whole module stays fast; the
full scaled configuration is exercised by the benchmark suite.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig.quick()


ALGORITHMS = {"Send-V", "H-WTopk", "Send-Sketch", "Improved-S", "TwoLevel-S"}


class TestCostFigures:
    def test_vary_k_rows_and_series(self, cfg):
        table = figures.vary_k(cfg, ks=(10, 30))
        assert len(table) == 2 * len(ALGORITHMS)
        assert set(table.column("algorithm")) == ALGORITHMS
        series = table.series("x", "communication_bytes")
        assert set(series) == ALGORITHMS
        assert all(len(points) == 2 for points in series.values())

    def test_vary_k_exact_methods_unaffected_by_k(self, cfg):
        table = figures.vary_k(cfg, ks=(10, 30))
        send_v = table.series("x", "communication_bytes")["Send-V"]
        assert send_v[0][1] == send_v[1][1]

    def test_vary_epsilon_contains_exact_reference_and_sweeps(self, cfg):
        table = figures.vary_epsilon(cfg, epsilons=(0.05, 0.02))
        assert {"H-WTopk", "Improved-S", "TwoLevel-S"} == set(table.column("algorithm"))
        exact_rows = table.filter(algorithm="H-WTopk")
        assert len(exact_rows) == 1
        sampler_rows = [row for row in table.rows if row["algorithm"] != "H-WTopk"]
        assert len(sampler_rows) == 4

    def test_vary_epsilon_sse_grows_with_epsilon(self, cfg):
        table = figures.vary_epsilon(cfg, epsilons=(0.08, 0.01))
        for name in ("Improved-S", "TwoLevel-S"):
            points = dict(table.series("x", "sse")[name])
            assert points[0.08] >= points[0.01]

    def test_vary_n_rows(self, cfg):
        table = figures.vary_n(cfg, ns=(20_000, 40_000))
        assert len(table) == 2 * len(ALGORITHMS)
        send_v = dict(table.series("x", "communication_bytes")["Send-V"])
        assert send_v[40_000] > send_v[20_000]

    def test_vary_domain_includes_send_coef(self, cfg):
        table = figures.vary_domain(cfg, log2_us=(8, 10))
        assert "Send-Coef" in set(table.column("algorithm"))
        assert len(table) == 2 * (len(ALGORITHMS) + 1)

    def test_vary_split_size_reports_split_bytes(self, cfg):
        table = figures.vary_split_size(cfg, split_counts=(16, 8))
        xs = sorted(set(table.column("x")))
        assert len(xs) == 2
        assert xs[0] < xs[1]

    def test_vary_skew_and_bandwidth(self, cfg):
        skew = figures.vary_skew(cfg, alphas=(0.8, 1.4))
        assert len(skew) == 2 * len(ALGORITHMS)
        bandwidth = figures.vary_bandwidth(cfg, fractions=(0.25, 1.0))
        send_v = dict(bandwidth.series("x", "time_s")["Send-V"])
        assert send_v[0.25] > send_v[1.0]

    def test_vary_record_size(self, cfg):
        table = figures.vary_record_size(cfg, record_sizes=(4, 64), num_records=20_000)
        send_v = dict(table.series("x", "communication_bytes")["Send-V"])
        assert send_v[64] >= send_v[4]
        assert len(table) == 2 * len(ALGORITHMS)


class TestWorldCupAndTradeoffs:
    def test_worldcup_costs(self, cfg):
        table = figures.worldcup_costs(cfg)
        assert set(table.column("algorithm")) == ALGORITHMS
        assert len(table) == len(ALGORITHMS)
        assert any("WorldCup" in note or "worldcup" in note.lower() for note in table.notes)

    def test_sse_tradeoff_rows(self, cfg):
        table = figures.sse_tradeoff(cfg, epsilons=(0.05, 0.02), sketch_bytes=(1024,))
        assert len(table) == 2 * 2 + 1
        assert set(table.column("algorithm")) == {"Improved-S", "TwoLevel-S", "Send-Sketch"}

    def test_worldcup_tradeoff_uses_figure_19_label(self, cfg):
        table = figures.worldcup_tradeoff(cfg, epsilons=(0.05,), sketch_bytes=(1024,))
        assert table.figure == "Figure 19"


class TestAnalysisAndAblations:
    def test_analysis_bounds_match_paper_example(self):
        table = figures.analysis_communication_bounds()
        bounds = {row["algorithm"]: row["bound_bytes"] for row in table.rows}
        assert bounds["Basic-S"] == pytest.approx(400e6)
        assert bounds["Improved-S"] == pytest.approx(40e6)
        assert bounds["TwoLevel-S"] < bounds["Improved-S"] < bounds["Basic-S"]

    def test_ablation_combiner(self, cfg):
        table = figures.ablation_combiner(cfg)
        variants = table.column("variant")
        assert "Basic-S (no aggregation)" in variants
        assert "Send-V (combiner)" in variants
        rows = {row["variant"]: row for row in table.rows}
        assert rows["Basic-S (aggregated)"]["communication_bytes"] <= (
            rows["Basic-S (no aggregation)"]["communication_bytes"]
        )

    def test_ablation_hwtopk_rounds(self, cfg):
        table = figures.ablation_hwtopk_rounds(cfg)
        assert len(table) == 4  # three rounds plus the Send-Coef reference
        round_rows = [row for row in table.rows if row["round"].startswith("H-WTopk")]
        reference = table.rows[-1]
        assert sum(row["shuffle_bytes"] for row in round_rows) < reference["shuffle_bytes"]

    def test_ablation_twolevel_threshold(self, cfg):
        table = figures.ablation_twolevel_threshold(cfg, scales=(0.5, 1.0, 2.0))
        assert len(table) == 3
        comm = dict(zip(table.column("threshold_scale"), table.column("communication_bytes")))
        assert comm[0.5] >= comm[2.0]
