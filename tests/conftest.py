"""Shared fixtures for the test suite.

All fixtures are deliberately small (domains of a few hundred keys, tens of
thousands of records) so the whole suite runs in well under a minute; the
benchmarks exercise the paper-scale (scaled) configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import ZipfDatasetGenerator
from repro.experiments.config import ExperimentConfig
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import HDFS


@pytest.fixture(scope="session")
def small_dataset():
    """A small Zipfian dataset: u = 256, n = 20_000, alpha = 1.1."""
    return ZipfDatasetGenerator(u=256, alpha=1.1, seed=7).generate(20_000, name="small-zipf")


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny Zipfian dataset: u = 64, n = 2_000 (for exhaustive checks)."""
    return ZipfDatasetGenerator(u=64, alpha=1.0, seed=3).generate(2_000, name="tiny-zipf")


@pytest.fixture(scope="session")
def small_reference(small_dataset):
    """Exact frequency vector of ``small_dataset``."""
    return small_dataset.frequency_vector()


@pytest.fixture()
def hdfs_with_small_dataset(small_dataset):
    """A fresh simulated HDFS holding ``small_dataset`` at ``/data/input``."""
    hdfs = HDFS(datanodes=[f"node-{i}" for i in range(4)])
    small_dataset.to_hdfs(hdfs, "/data/input")
    return hdfs


@pytest.fixture(scope="session")
def small_cluster(small_dataset):
    """The paper's cluster with a split size giving ~8 splits of ``small_dataset``."""
    split_size = max(4, small_dataset.size_bytes // 8)
    return paper_cluster(split_size_bytes=split_size)


@pytest.fixture(scope="session")
def quick_config():
    """The quick experiment configuration used by harness tests."""
    return ExperimentConfig.quick()


@pytest.fixture()
def rng():
    """A deterministic random generator for test-local randomness."""
    return np.random.default_rng(12345)
