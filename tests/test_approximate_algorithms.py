"""Tests for the approximate algorithms: Send-Sketch, Basic-S, Improved-S, TwoLevel-S."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    BasicSampling,
    HWTopk,
    ImprovedSampling,
    SendSketch,
    SendV,
    TwoLevelSampling,
)
from repro.core.haar import sparse_haar_transform
from repro.core.histogram import WaveletHistogram
from repro.core.topk_coefficients import top_k_coefficients
from repro.errors import InvalidParameterError
from repro.mapreduce.counters import CounterNames

K = 15
EPSILON = 0.02


@pytest.fixture(scope="module")
def approx_setup():
    """A moderately skewed dataset with 16 splits plus the ideal answer."""
    from repro.data.generators import ZipfDatasetGenerator
    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.hdfs import HDFS

    dataset = ZipfDatasetGenerator(u=1024, alpha=1.2, seed=17).generate(60_000)
    hdfs = HDFS()
    dataset.to_hdfs(hdfs, "/data/input")
    cluster = paper_cluster(split_size_bytes=dataset.size_bytes // 16)
    reference = dataset.frequency_vector()
    ideal = WaveletHistogram.from_frequency_vector(reference, K)
    return dataset, hdfs, cluster, reference, ideal


class TestSendSketch:
    def test_finds_dominant_coefficients(self, approx_setup):
        dataset, hdfs, cluster, reference, ideal = approx_setup
        result = SendSketch(dataset.u, K, bytes_per_level=16 * 1024).run(
            hdfs, "/data/input", cluster=cluster
        )
        true_top = top_k_coefficients(sparse_haar_transform(reference.counts, dataset.u), 3)
        assert set(true_top) & set(result.histogram.coefficients)

    def test_sse_within_small_factor_of_ideal(self, approx_setup):
        dataset, hdfs, cluster, reference, ideal = approx_setup
        result = SendSketch(dataset.u, K, bytes_per_level=16 * 1024).run(
            hdfs, "/data/input", cluster=cluster
        )
        assert result.histogram.sse(reference) <= 5 * ideal.sse(reference)

    def test_communication_is_bounded_by_sketch_size_not_data_size(self, approx_setup):
        """Each split ships at most its sketch cells, regardless of how many records it scanned."""
        dataset, hdfs, cluster, _, _ = approx_setup
        from repro.sketches.wavelet import WaveletGcsSketch

        bytes_per_level = 4096
        result = SendSketch(dataset.u, K, bytes_per_level=bytes_per_level).run(
            hdfs, "/data/input", cluster=cluster
        )
        max_sketch_bytes = WaveletGcsSketch(dataset.u, bytes_per_level=bytes_per_level).total_cells * 12
        num_splits = result.rounds[0].num_mappers
        assert result.rounds[0].shuffle_bytes <= num_splits * max_sketch_bytes

    def test_counts_sketch_updates(self, approx_setup):
        dataset, hdfs, cluster, _, _ = approx_setup
        result = SendSketch(dataset.u, K, bytes_per_level=4096).run(
            hdfs, "/data/input", cluster=cluster
        )
        log_u = dataset.u.bit_length() - 1
        updates = result.counters.get(CounterNames.SKETCH_UPDATE_OPS)
        # One path of log2(u)+1 coefficients per distinct key per split.
        assert updates >= (log_u + 1)
        assert updates % (log_u + 1) == 0

    def test_rejects_tiny_space_budget(self):
        with pytest.raises(InvalidParameterError):
            SendSketch(1024, K, bytes_per_level=128)


class TestSamplingAlgorithms:
    @pytest.mark.parametrize("algorithm_class", [BasicSampling, ImprovedSampling, TwoLevelSampling])
    def test_sse_within_factor_of_ideal(self, approx_setup, algorithm_class):
        dataset, hdfs, cluster, reference, ideal = approx_setup
        result = algorithm_class(dataset.u, K, epsilon=EPSILON).run(
            hdfs, "/data/input", cluster=cluster
        )
        assert result.histogram.sse(reference) <= 3 * ideal.sse(reference)

    @pytest.mark.parametrize("algorithm_class", [BasicSampling, ImprovedSampling, TwoLevelSampling])
    def test_single_round_and_sampled_scan(self, approx_setup, algorithm_class):
        dataset, hdfs, cluster, _, _ = approx_setup
        result = algorithm_class(dataset.u, K, epsilon=EPSILON).run(
            hdfs, "/data/input", cluster=cluster
        )
        assert result.num_rounds == 1
        # Sampling methods never scan the full input.
        assert result.counters.get(CounterNames.MAP_INPUT_RECORDS) < dataset.n
        assert result.counters.get(CounterNames.SAMPLED_RECORDS) == pytest.approx(
            1.0 / EPSILON ** 2, rel=0.25
        )

    def test_epsilon_validation(self):
        for algorithm_class in (BasicSampling, ImprovedSampling, TwoLevelSampling):
            with pytest.raises(InvalidParameterError):
                algorithm_class(1024, K, epsilon=0.0)
        with pytest.raises(InvalidParameterError):
            TwoLevelSampling(1024, K, epsilon=0.01, threshold_scale=0)

    def test_communication_ordering_matches_section_4(self, approx_setup):
        """Basic-S ships the whole sample; the improved schemes ship (much) less."""
        dataset, hdfs, cluster, _, _ = approx_setup
        basic = BasicSampling(dataset.u, K, epsilon=EPSILON, aggregate_in_mapper=False).run(
            hdfs, "/data/input", cluster=cluster
        )
        improved = ImprovedSampling(dataset.u, K, epsilon=EPSILON).run(
            hdfs, "/data/input", cluster=cluster
        )
        two_level = TwoLevelSampling(dataset.u, K, epsilon=EPSILON).run(
            hdfs, "/data/input", cluster=cluster
        )
        assert improved.rounds[0].shuffle_bytes < basic.rounds[0].shuffle_bytes
        assert two_level.rounds[0].shuffle_bytes < basic.rounds[0].shuffle_bytes

    def test_two_level_improves_on_improved_with_many_splits(self):
        """The sqrt(m) gap (Theorem 3) shows once m is large enough."""
        from repro.data.generators import ZipfDatasetGenerator
        from repro.mapreduce.cluster import paper_cluster
        from repro.mapreduce.hdfs import HDFS

        dataset = ZipfDatasetGenerator(u=2048, alpha=1.1, seed=23).generate(120_000)
        hdfs = HDFS()
        dataset.to_hdfs(hdfs, "/data/many-splits")
        cluster = paper_cluster(split_size_bytes=dataset.size_bytes // 64)
        epsilon = 0.005
        improved = ImprovedSampling(dataset.u, K, epsilon=epsilon).run(
            hdfs, "/data/many-splits", cluster=cluster
        )
        two_level = TwoLevelSampling(dataset.u, K, epsilon=epsilon).run(
            hdfs, "/data/many-splits", cluster=cluster
        )
        assert two_level.rounds[0].shuffle_bytes < improved.rounds[0].shuffle_bytes

    def test_basic_aggregation_flag_changes_pair_count_not_answer(self, approx_setup):
        dataset, hdfs, cluster, reference, ideal = approx_setup
        aggregated = BasicSampling(dataset.u, K, epsilon=EPSILON, aggregate_in_mapper=True).run(
            hdfs, "/data/input", cluster=cluster
        )
        raw = BasicSampling(dataset.u, K, epsilon=EPSILON, aggregate_in_mapper=False).run(
            hdfs, "/data/input", cluster=cluster
        )
        assert aggregated.counters.get(CounterNames.SHUFFLE_RECORDS) <= (
            raw.counters.get(CounterNames.SHUFFLE_RECORDS)
        )
        assert aggregated.histogram.sse(reference) <= 3 * ideal.sse(reference)

    def test_two_level_null_pairs_cost_only_the_key(self, approx_setup):
        """NULL markers are 4 bytes, exact pairs 8 bytes, so bytes < 8 * pairs."""
        dataset, hdfs, cluster, _, _ = approx_setup
        result = TwoLevelSampling(dataset.u, K, epsilon=0.05).run(
            hdfs, "/data/input", cluster=cluster
        )
        pairs = result.counters.get(CounterNames.SHUFFLE_RECORDS)
        assert pairs > 0
        assert result.rounds[0].shuffle_bytes < 8 * pairs

    def test_threshold_scale_trades_communication_for_variance(self, approx_setup):
        dataset, hdfs, cluster, _, _ = approx_setup
        small_threshold = TwoLevelSampling(dataset.u, K, epsilon=EPSILON,
                                           threshold_scale=0.25).run(
            hdfs, "/data/input", cluster=cluster
        )
        large_threshold = TwoLevelSampling(dataset.u, K, epsilon=EPSILON,
                                           threshold_scale=4.0).run(
            hdfs, "/data/input", cluster=cluster
        )
        # A lower threshold emits more exact counts, i.e. more bytes.
        assert small_threshold.rounds[0].shuffle_bytes >= large_threshold.rounds[0].shuffle_bytes


class TestRelativeBehaviour:
    def test_approximations_are_cheaper_than_exact(self, approx_setup):
        """The Section 5 headline: sampling needs a fraction of Send-V's cost."""
        dataset, hdfs, cluster, _, _ = approx_setup
        send_v = SendV(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        hwtopk = HWTopk(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        two_level = TwoLevelSampling(dataset.u, K, epsilon=EPSILON).run(
            hdfs, "/data/input", cluster=cluster
        )
        assert two_level.communication_bytes < hwtopk.communication_bytes
        assert hwtopk.communication_bytes < send_v.communication_bytes

    def test_results_are_reproducible_given_seed(self, approx_setup):
        dataset, hdfs, cluster, _, _ = approx_setup
        first = TwoLevelSampling(dataset.u, K, epsilon=EPSILON).run(
            hdfs, "/data/input", cluster=cluster, seed=5
        )
        second = TwoLevelSampling(dataset.u, K, epsilon=EPSILON).run(
            hdfs, "/data/input", cluster=cluster, seed=5
        )
        third = TwoLevelSampling(dataset.u, K, epsilon=EPSILON).run(
            hdfs, "/data/input", cluster=cluster, seed=6
        )
        assert first.histogram.coefficients == second.histogram.coefficients
        assert first.communication_bytes == second.communication_bytes
        assert third.communication_bytes != first.communication_bytes or (
            third.histogram.coefficients != first.histogram.coefficients
        )
