"""Tests for classic TPUT (repro.topk.tput)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError, TopKError
from repro.topk.tput import kth_largest, tput_topk


def brute_force_topk(node_scores, k):
    totals = {}
    for scores in node_scores:
        for item, score in scores.items():
            totals[item] = totals.get(item, 0.0) + score
    ranked = sorted(totals.items(), key=lambda pair: (-pair[1], pair[0]))
    return dict(ranked[:k])


class TestKthLargest:
    def test_basic(self):
        assert kth_largest([5.0, 1.0, 3.0], 2) == 3.0

    def test_fewer_values_than_k(self):
        assert kth_largest([5.0], 3) == 0.0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            kth_largest([1.0], 0)


class TestTputCorrectness:
    def test_simple_three_nodes(self):
        nodes = [
            {1: 10.0, 2: 5.0, 3: 1.0},
            {1: 1.0, 2: 8.0, 4: 4.0},
            {2: 2.0, 3: 6.0, 5: 9.0},
        ]
        result = tput_topk(nodes, 2)
        assert result.top_k == brute_force_topk(nodes, 2)

    def test_item_missing_from_some_nodes(self):
        nodes = [{1: 100.0}, {2: 60.0}, {3: 55.0}, {2: 45.0}]
        result = tput_topk(nodes, 2)
        assert result.top_k == {2: 105.0, 1: 100.0}

    def test_k_larger_than_item_count(self):
        nodes = [{1: 3.0}, {2: 4.0}]
        result = tput_topk(nodes, 10)
        assert result.top_k == {1: 3.0, 2: 4.0}

    def test_rejects_negative_scores(self):
        with pytest.raises(TopKError):
            tput_topk([{1: -1.0}], 1)

    def test_rejects_empty_nodes_or_bad_k(self):
        with pytest.raises(InvalidParameterError):
            tput_topk([], 1)
        with pytest.raises(InvalidParameterError):
            tput_topk([{1: 1.0}], 0)

    def test_communication_less_than_sending_everything(self):
        rng = np.random.default_rng(0)
        nodes = []
        for _ in range(10):
            items = rng.choice(500, size=200, replace=False)
            nodes.append({int(item): float(rng.zipf(1.5)) for item in items})
        result = tput_topk(nodes, 5)
        total_pairs = sum(len(scores) for scores in nodes)
        assert result.top_k == brute_force_topk(nodes, 5)
        assert result.total_pairs_sent < total_pairs
        assert len(result.pairs_sent_per_round) == 3

    @given(st.lists(st.dictionaries(st.integers(1, 40), st.floats(0, 100, allow_nan=False),
                                    min_size=1, max_size=15),
                    min_size=1, max_size=6),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=60)
    def test_matches_brute_force(self, nodes, k):
        result = tput_topk(nodes, k)
        expected = brute_force_topk(nodes, k)
        # Scores of the returned items must match the true aggregates and the
        # k-th returned score must equal the true k-th score (ties may swap items).
        totals = brute_force_topk(nodes, 10**6)
        for item, score in result.top_k.items():
            assert score == pytest.approx(totals[item])
        assert sorted(result.top_k.values(), reverse=True) == pytest.approx(
            sorted(expected.values(), reverse=True)
        )
