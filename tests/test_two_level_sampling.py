"""Tests for the two-level sampling scheme (repro.sampling.two_level).

Includes a statistical verification of Theorem 1 (unbiasedness and the 1/eps
standard-deviation bound of the reconstructed sample count).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SamplingError
from repro.sampling.two_level import (
    SecondLevelEmission,
    TwoLevelEstimator,
    second_level_emit,
    second_level_threshold,
)


class TestThreshold:
    def test_paper_threshold(self):
        assert second_level_threshold(0.01, 100) == pytest.approx(1.0 / (0.01 * 10))

    def test_threshold_scale(self):
        assert second_level_threshold(0.01, 100, threshold_scale=2.0) == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(SamplingError):
            second_level_threshold(0, 10)
        with pytest.raises(SamplingError):
            second_level_threshold(0.1, 0)
        with pytest.raises(SamplingError):
            second_level_threshold(0.1, 10, threshold_scale=0)


class TestSecondLevelEmit:
    def test_heavy_keys_emitted_exactly(self, rng):
        epsilon, m = 0.05, 16
        threshold = second_level_threshold(epsilon, m)
        counts = {1: threshold * 3, 2: threshold, 3: threshold - 1e-9}
        emissions = list(second_level_emit(counts, epsilon, m, rng))
        exact = {e.key: e.count for e in emissions if e.is_exact}
        assert exact[1] == counts[1]
        assert exact[2] == counts[2]
        assert 3 not in exact

    def test_zero_and_negative_counts_skipped(self, rng):
        emissions = list(second_level_emit({1: 0, 2: -1}, 0.1, 4, rng))
        assert emissions == []

    def test_light_keys_emitted_with_probability_proportional_to_count(self):
        epsilon, m = 0.01, 100
        threshold = second_level_threshold(epsilon, m)  # 10
        count = threshold / 2  # emission probability 0.5
        rng = np.random.default_rng(0)
        hits = 0
        trials = 2000
        for _ in range(trials):
            hits += sum(1 for e in second_level_emit({7: count}, epsilon, m, rng))
        assert hits / trials == pytest.approx(0.5, abs=0.05)

    def test_emission_dataclass(self):
        assert SecondLevelEmission(3, 4.0).is_exact
        assert not SecondLevelEmission(3, None).is_exact


class TestTwoLevelEstimator:
    def test_validation(self):
        with pytest.raises(SamplingError):
            TwoLevelEstimator(0, 4, 0.5)
        with pytest.raises(SamplingError):
            TwoLevelEstimator(0.1, 0, 0.5)
        with pytest.raises(SamplingError):
            TwoLevelEstimator(0.1, 4, 0.0)

    def test_exact_counts_reconstructed_exactly(self):
        estimator = TwoLevelEstimator(0.1, 4, first_level_probability=0.5)
        estimator.observe(1, 30.0)
        estimator.observe(1, 12.0)
        assert estimator.estimate_sample_count(1) == pytest.approx(42.0)
        assert estimator.estimate_frequency(1) == pytest.approx(84.0)

    def test_null_markers_add_threshold_each(self):
        epsilon, m = 0.01, 100
        estimator = TwoLevelEstimator(epsilon, m, first_level_probability=1.0)
        estimator.observe(5, None)
        estimator.observe(5, None)
        assert estimator.estimate_sample_count(5) == pytest.approx(2 / (epsilon * np.sqrt(m)))

    def test_unobserved_key_estimates_to_zero(self):
        estimator = TwoLevelEstimator(0.1, 4, 0.5)
        assert estimator.estimate_sample_count(99) == 0.0
        assert estimator.observed_keys() == ()

    def test_estimated_frequency_vector_lists_observed_keys(self):
        estimator = TwoLevelEstimator(0.1, 4, 0.5)
        estimator.observe(3, 10.0)
        estimator.observe(8, None)
        vector = estimator.estimated_frequency_vector()
        assert set(vector) == {3, 8}

    def test_theorem_1_unbiased_and_bounded_deviation(self):
        """Statistical check of Theorem 1: E[s_hat] = s, sd(s_hat) <= 1/eps."""
        epsilon, m = 0.05, 25
        threshold = second_level_threshold(epsilon, m)  # 4
        rng = np.random.default_rng(42)
        # Local sample counts for one key across m splits, all below the threshold.
        local_counts = [float(c) for c in rng.integers(0, int(threshold), size=m)]
        true_total = sum(local_counts)

        estimates = []
        for _ in range(400):
            estimator = TwoLevelEstimator(epsilon, m, first_level_probability=1.0)
            for split_id, count in enumerate(local_counts):
                for emission in second_level_emit({7: count}, epsilon, m, rng):
                    estimator.observe_emission(emission)
            estimates.append(estimator.estimate_sample_count(7))
        estimates = np.array(estimates)
        standard_error = estimates.std() / np.sqrt(len(estimates))
        assert estimates.mean() == pytest.approx(true_total, abs=4 * standard_error + 1e-9)
        assert estimates.std() <= 1.0 / epsilon

    def test_theorem_1_holds_for_scaled_threshold(self):
        """The generalised estimator stays unbiased for non-default thresholds."""
        epsilon, m, scale = 0.05, 16, 2.5
        rng = np.random.default_rng(3)
        local_counts = [3.0, 5.0, 7.0, 2.0] * 4
        true_total = sum(local_counts)
        estimates = []
        for _ in range(400):
            estimator = TwoLevelEstimator(epsilon, m, first_level_probability=1.0,
                                          threshold_scale=scale)
            for count in local_counts:
                for emission in second_level_emit({1: count}, epsilon, m, rng,
                                                  threshold_scale=scale):
                    estimator.observe_emission(emission)
            estimates.append(estimator.estimate_sample_count(1))
        estimates = np.array(estimates)
        standard_error = estimates.std() / np.sqrt(len(estimates))
        assert estimates.mean() == pytest.approx(true_total, abs=4 * standard_error + 1e-9)

    @given(st.lists(st.floats(min_value=0, max_value=50, allow_nan=False),
                    min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_estimate_never_negative(self, counts):
        epsilon, m = 0.1, 20
        rng = np.random.default_rng(0)
        estimator = TwoLevelEstimator(epsilon, m, first_level_probability=0.5)
        for split_counts in counts:
            for emission in second_level_emit({1: split_counts}, epsilon, m, rng):
                estimator.observe_emission(emission)
        assert estimator.estimate_sample_count(1) >= 0
        assert estimator.estimate_frequency(1) >= 0
