"""Tests for the WaveletHistogram synopsis (repro.core.histogram)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frequency import FrequencyVector
from repro.core.haar import haar_transform
from repro.core.histogram import WaveletHistogram
from repro.errors import InvalidParameterError, KeyOutOfDomainError


def _dense_zipfish(u: int = 64, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, u + 1, dtype=float)
    frequencies = 1000.0 / ranks ** 1.1
    rng.shuffle(frequencies)
    return np.round(frequencies)


class TestConstruction:
    def test_from_dense_and_from_frequency_vector_agree(self):
        dense = _dense_zipfish()
        from_dense = WaveletHistogram.from_dense(dense, 10)
        from_sparse = WaveletHistogram.from_frequency_vector(FrequencyVector.from_dense(dense), 10)
        assert from_dense.coefficients.keys() == from_sparse.coefficients.keys()
        for index in from_dense.coefficients:
            assert from_dense.coefficients[index] == pytest.approx(
                from_sparse.coefficients[index]
            )

    def test_keeps_at_most_k_coefficients(self):
        dense = _dense_zipfish()
        histogram = WaveletHistogram.from_dense(dense, 5)
        assert len(histogram) <= 5

    def test_full_budget_reconstructs_exactly(self):
        dense = _dense_zipfish(u=32)
        histogram = WaveletHistogram.from_dense(dense, 32)
        assert np.allclose(histogram.reconstruct(), dense)
        assert histogram.sse(dense) == pytest.approx(0.0, abs=1e-9)

    def test_from_coefficients_validates_indices(self):
        with pytest.raises(KeyOutOfDomainError):
            WaveletHistogram.from_coefficients({100: 1.0}, u=64)

    def test_rejects_invalid_k(self):
        with pytest.raises(InvalidParameterError):
            WaveletHistogram(64, {}, k=0)

    def test_zero_coefficients_dropped(self):
        histogram = WaveletHistogram(64, {1: 0.0, 2: 5.0})
        assert 1 not in histogram
        assert 2 in histogram


class TestEstimation:
    def test_point_estimates_match_reconstruction(self):
        dense = _dense_zipfish()
        histogram = WaveletHistogram.from_dense(dense, 12)
        reconstruction = histogram.reconstruct()
        for key in range(1, 65):
            assert histogram.estimate(key) == pytest.approx(reconstruction[key - 1], abs=1e-9)

    def test_range_sum_matches_reconstruction_sums(self):
        dense = _dense_zipfish()
        histogram = WaveletHistogram.from_dense(dense, 12)
        reconstruction = histogram.reconstruct()
        for lo, hi in [(1, 64), (1, 1), (5, 20), (33, 64), (17, 48)]:
            assert histogram.range_sum(lo, hi) == pytest.approx(
                float(reconstruction[lo - 1 : hi].sum()), abs=1e-6
            )

    def test_range_sum_with_full_budget_is_exact(self):
        dense = _dense_zipfish(u=32)
        histogram = WaveletHistogram.from_dense(dense, 32)
        assert histogram.range_sum(3, 17) == pytest.approx(float(dense[2:17].sum()), abs=1e-6)

    def test_range_sum_validates_inputs(self):
        histogram = WaveletHistogram.from_dense(_dense_zipfish(), 5)
        with pytest.raises(InvalidParameterError):
            histogram.range_sum(5, 4)
        with pytest.raises(KeyOutOfDomainError):
            histogram.range_sum(0, 4)
        with pytest.raises(KeyOutOfDomainError):
            histogram.range_sum(1, 65)

    @given(st.integers(min_value=1, max_value=32), st.integers(min_value=1, max_value=32))
    @settings(max_examples=40)
    def test_range_sum_property(self, a, b):
        lo, hi = min(a, b), max(a, b)
        dense = _dense_zipfish(u=32, seed=3)
        histogram = WaveletHistogram.from_dense(dense, 8)
        reconstruction = histogram.reconstruct()
        assert histogram.range_sum(lo, hi) == pytest.approx(
            float(reconstruction[lo - 1 : hi].sum()), abs=1e-6
        )


class TestErrorMetrics:
    def test_sse_decreases_with_k(self):
        """The paper's Figure 6 behaviour: more coefficients, lower SSE."""
        dense = _dense_zipfish()
        errors = [WaveletHistogram.from_dense(dense, k).sse(dense) for k in (1, 4, 16, 64)]
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] == pytest.approx(0.0, abs=1e-9)

    def test_best_k_term_is_optimal_among_coefficient_subsets(self):
        """Keeping the k largest-magnitude coefficients minimises SSE (Parseval)."""
        dense = _dense_zipfish(u=16, seed=4)
        k = 3
        best = WaveletHistogram.from_dense(dense, k).sse(dense)
        w = haar_transform(dense)
        # Any other subset of k coefficients cannot do better.
        rng = np.random.default_rng(0)
        for _ in range(20):
            subset = rng.choice(16, size=k, replace=False)
            other = WaveletHistogram(16, {int(i) + 1: float(w[i]) for i in subset})
            assert other.sse(dense) >= best - 1e-6

    def test_sse_equals_unretained_energy(self):
        """By Parseval the SSE of a truncated transform is the dropped coefficients' energy."""
        dense = _dense_zipfish(u=32, seed=5)
        w = haar_transform(dense)
        histogram = WaveletHistogram.from_dense(dense, 6)
        retained = set(histogram.coefficients)
        dropped_energy = sum(float(w[i - 1]) ** 2 for i in range(1, 33) if i not in retained)
        assert histogram.sse(dense) == pytest.approx(dropped_energy, rel=1e-9)

    def test_sse_accepts_frequency_vector(self):
        dense = _dense_zipfish()
        vector = FrequencyVector.from_dense(dense)
        histogram = WaveletHistogram.from_dense(dense, 8)
        assert histogram.sse(vector) == pytest.approx(histogram.sse(dense))

    def test_sse_rejects_mismatched_length(self):
        histogram = WaveletHistogram.from_dense(_dense_zipfish(), 8)
        with pytest.raises(InvalidParameterError):
            histogram.sse(np.zeros(32))

    def test_relative_energy_error_bounds(self):
        dense = _dense_zipfish()
        histogram = WaveletHistogram.from_dense(dense, 8)
        relative = histogram.relative_energy_error(dense)
        assert 0.0 <= relative < 1.0
        assert WaveletHistogram.from_dense(dense, 64).relative_energy_error(dense) == pytest.approx(0.0, abs=1e-12)

    def test_relative_energy_error_of_zero_signal(self):
        histogram = WaveletHistogram(16, {})
        assert histogram.relative_energy_error(np.zeros(16)) == 0.0

    def test_retained_energy(self):
        histogram = WaveletHistogram(16, {1: 3.0, 5: -4.0})
        assert histogram.retained_energy() == pytest.approx(25.0)
