"""Tests for the unified service API: RuntimeProfile, the algorithm registry,
the deprecated kwarg shim on ``HistogramAlgorithm.run`` and the
``SynopsisService`` façade (build → store → multi-synopsis fan-out).

``TestServiceSmoke`` doubles as the CI smoke entry point: the workflow runs it
with ``REPRO_API_PATH=profile`` and ``REPRO_API_PATH=shim`` so both spellings
of the build API stay part of the test matrix.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.algorithms import SendV, TwoLevelSampling
from repro.algorithms.base import HistogramAlgorithm
from repro.algorithms.registry import (
    algorithm_class,
    algorithm_names,
    make_algorithm,
    register,
)
from repro.data.generators import ZipfDatasetGenerator
from repro.errors import InvalidParameterError
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.executor import (
    ParallelExecutor,
    SerialExecutor,
    shared_executor,
)
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.runtime import JobRunner
from repro.service import (
    AlgorithmSpec,
    BuildReport,
    BuildRequest,
    RuntimeProfile,
    SynopsisService,
)
from repro.serving.backends import MemoryBackend
from repro.serving.store import SynopsisStore
from repro.serving.workload import WorkloadGenerator

U = 256
K = 12
SEED = 11


@pytest.fixture(scope="module")
def service_dataset():
    return ZipfDatasetGenerator(u=U, alpha=1.1, seed=5).generate(8_000, name="svc-zipf")


def _legacy_run(algorithm, dataset, **kwargs):
    """Run with the deprecated kwarg surface, asserting exactly one warning."""
    hdfs = HDFS()
    dataset.to_hdfs(hdfs, "/data/input")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = algorithm.run(hdfs, "/data/input", **kwargs)
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1, "legacy kwargs must emit exactly one warning"
    assert "RuntimeProfile" in str(deprecations[0].message)
    return result


def _profile_run(algorithm, dataset, profile):
    """Run through the profile path, asserting it is warning-free."""
    hdfs = HDFS()
    dataset.to_hdfs(hdfs, "/data/input")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = algorithm.run(hdfs, "/data/input", profile=profile)
    assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
    return result


def _assert_identical(first, second):
    assert first.histogram.coefficients == second.histogram.coefficients
    assert first.counters.as_dict() == second.counters.as_dict()
    assert first.communication_bytes == second.communication_bytes
    assert first.simulated_time_s == second.simulated_time_s
    assert first.num_rounds == second.num_rounds
    for round_a, round_b in zip(first.rounds, second.rounds):
        assert round_a.output == round_b.output
        assert round_a.shuffle_bytes == round_b.shuffle_bytes


class TestRuntimeProfile:
    def test_defaults(self):
        profile = RuntimeProfile()
        assert profile.seed == 7
        assert profile.executor_name == "serial"
        assert profile.data_plane == "batch"
        assert profile.cluster is None and profile.cost_parameters is None

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            RuntimeProfile(executor="threaded")
        with pytest.raises(InvalidParameterError):
            RuntimeProfile(data_plane="rows")
        with pytest.raises(InvalidParameterError):
            RuntimeProfile(workers=0)
        with pytest.raises(InvalidParameterError):
            RuntimeProfile(executor=42)  # type: ignore[arg-type]

    def test_is_frozen_and_overridable(self):
        profile = RuntimeProfile()
        with pytest.raises(Exception):
            profile.seed = 9  # type: ignore[misc]
        derived = profile.with_overrides(seed=9, data_plane="records")
        assert derived.seed == 9 and derived.data_plane == "records"
        assert profile.seed == 7  # original untouched

    def test_build_executor_resolution(self):
        assert RuntimeProfile().build_executor() is shared_executor("serial")
        instance = SerialExecutor()
        assert RuntimeProfile(executor=instance).build_executor() is instance
        assert RuntimeProfile(executor=instance).executor_name == "serial"

    def test_resolved_cluster_defaults_to_paper_cluster(self):
        assert RuntimeProfile().resolved_cluster().machines
        cluster = paper_cluster(split_size_bytes=512)
        assert RuntimeProfile(cluster=cluster).resolved_cluster() is cluster

    def test_create_runner(self):
        runner = RuntimeProfile(seed=3, data_plane="records").create_runner(HDFS())
        assert isinstance(runner, JobRunner)
        assert runner.data_plane == "records"
        assert isinstance(runner.executor, SerialExecutor)

    def test_parse_shorthand_and_pairs(self):
        assert RuntimeProfile.parse("serial").executor_name == "serial"
        parallel = RuntimeProfile.parse("parallel:4")
        assert parallel.executor_name == "parallel" and parallel.workers == 4
        full = RuntimeProfile.parse(
            "executor=parallel,workers=2,seed=5,data-plane=records")
        assert (full.executor_name, full.workers, full.seed, full.data_plane) == (
            "parallel", 2, 5, "records")

    def test_parse_concurrent_jobs(self):
        batch = RuntimeProfile.parse("parallel:4,concurrent-jobs=7")
        assert batch.executor_name == "parallel" and batch.workers == 4
        assert batch.concurrent_jobs == 7
        assert "concurrent-jobs=7" in batch.describe()
        assert RuntimeProfile.parse("serial").concurrent_jobs == 1
        with pytest.raises(InvalidParameterError):
            RuntimeProfile.parse("concurrent-jobs=0")
        with pytest.raises(InvalidParameterError):
            RuntimeProfile(concurrent_jobs=0)

    def test_parse_rejects_bad_specs(self):
        for bad in ("", "   ", "executor=threaded", "seed=x", "parallel:x",
                    "colour=blue"):
            with pytest.raises(InvalidParameterError):
                RuntimeProfile.parse(bad)

    def test_parse_overrides_only_mentioned_keys(self):
        overrides = RuntimeProfile.parse_overrides("data-plane=records")
        assert overrides == {"data_plane": "records"}

    def test_describe_mentions_the_executor(self):
        assert "executor=parallel:3" in RuntimeProfile(
            executor="parallel", workers=3).describe()


class TestRunShim:
    def test_legacy_kwargs_and_profile_are_bit_identical(self, service_dataset):
        cluster = paper_cluster(split_size_bytes=service_dataset.size_bytes // 8)
        legacy = _legacy_run(TwoLevelSampling(U, K, epsilon=0.05), service_dataset,
                             cluster=cluster, seed=SEED, data_plane="batch")
        profiled = _profile_run(TwoLevelSampling(U, K, epsilon=0.05), service_dataset,
                                RuntimeProfile(cluster=cluster, seed=SEED))
        _assert_identical(legacy, profiled)

    def test_positional_legacy_cluster_matches_keyword(self, service_dataset):
        cluster = paper_cluster(split_size_bytes=service_dataset.size_bytes // 8)
        hdfs = HDFS()
        service_dataset.to_hdfs(hdfs, "/data/input")
        with pytest.warns(DeprecationWarning, match="RuntimeProfile"):
            positional = SendV(U, K).run(hdfs, "/data/input", cluster)
        with pytest.warns(DeprecationWarning, match="RuntimeProfile"):
            keyword = SendV(U, K).run(hdfs, "/data/input", cluster=cluster)
        _assert_identical(positional, keyword)

    def test_store_kwargs_warn_and_persist(self, service_dataset, tmp_path):
        store = SynopsisStore(str(tmp_path / "store"))
        result = _legacy_run(SendV(U, K), service_dataset,
                             store=store, store_name="legacy-entry")
        entry = result.details["store_entry"]
        assert entry["name"] == "legacy-entry" and entry["version"] == 1
        assert store.load("legacy-entry").histogram.coefficients == \
            result.histogram.coefficients

    def test_mixing_profile_and_legacy_kwargs_raises(self, service_dataset):
        hdfs = HDFS()
        service_dataset.to_hdfs(hdfs, "/data/input")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(InvalidParameterError):
                SendV(U, K).run(hdfs, "/data/input", RuntimeProfile(), seed=3)

    def test_profile_slot_rejects_garbage(self, service_dataset):
        hdfs = HDFS()
        service_dataset.to_hdfs(hdfs, "/data/input")
        with pytest.raises(InvalidParameterError):
            SendV(U, K).run(hdfs, "/data/input", 42)  # type: ignore[arg-type]

    def test_executor_instance_through_legacy_kwarg(self, service_dataset):
        serial = _profile_run(SendV(U, K), service_dataset, RuntimeProfile(seed=SEED))
        executor = ParallelExecutor(max_workers=2)
        try:
            legacy = _legacy_run(SendV(U, K), service_dataset,
                                 seed=SEED, executor=executor)
        finally:
            executor.close()
        _assert_identical(serial, legacy)


class TestRegistry:
    def test_all_seven_algorithms_are_registered(self):
        assert algorithm_names() == (
            "basic-s", "h-wtopk", "improved-s", "send-coef",
            "send-sketch", "send-v", "twolevel-s",
        )

    def test_make_algorithm_is_case_insensitive(self):
        assert isinstance(make_algorithm("Send-V", u=64, k=5), SendV)
        assert algorithm_class("SEND-V") is SendV

    def test_parameters_pass_through(self):
        sketch = make_algorithm("send-sketch", u=64, k=5, bytes_per_level=2048)
        assert sketch.bytes_per_level == 2048
        sharded = make_algorithm("send-v", u=64, k=5, num_reducers=3)
        assert sharded.num_reducers == 3

    def test_unknown_name_lists_every_registry_slug(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            make_algorithm("nope", u=64, k=5)
        message = str(excinfo.value)
        assert "valid registry slugs" in message
        for slug in algorithm_names():
            assert slug in message

    def test_unknown_name_suggests_the_closest_slug(self):
        with pytest.raises(InvalidParameterError, match="did you mean 'send-v'"):
            make_algorithm("send-vv", u=64, k=5)

    def test_bad_parameters_are_reported(self):
        with pytest.raises(InvalidParameterError, match="send-v"):
            make_algorithm("send-v", u=64, k=5, flux_capacitor=True)

    def test_register_guards(self):
        with pytest.raises(InvalidParameterError):
            register(int)  # type: ignore[arg-type]
        # Re-registering the same class is a no-op...
        assert register(SendV) is SendV

        # ...but claiming an existing name with a new class is rejected.
        class Impostor(SendV):
            name = "Send-V"

        with pytest.raises(InvalidParameterError, match="already registered"):
            register(Impostor)

    def test_out_of_tree_registration(self):
        class Custom(SendV):
            name = "Custom-For-Test"

        try:
            register(Custom)
            assert isinstance(make_algorithm("custom-for-test", u=64, k=5), Custom)
        finally:
            from repro.algorithms import registry

            registry._REGISTRY.pop("custom-for-test", None)


class TestAlgorithmSpec:
    def test_create_through_the_registry(self):
        spec = AlgorithmSpec("twolevel-s", k=8, parameters={"epsilon": 0.05})
        algorithm = spec.create(default_u=128)
        assert isinstance(algorithm, TwoLevelSampling)
        assert algorithm.u == 128 and algorithm.k == 8

    def test_explicit_u_wins(self):
        assert AlgorithmSpec("send-v", u=64).create(default_u=128).u == 64

    def test_missing_domain_raises(self):
        with pytest.raises(InvalidParameterError, match="domain"):
            AlgorithmSpec("send-v").create()


class TestSynopsisService:
    def test_build_publishes_versions_with_provenance(self, service_dataset):
        service = SynopsisService(profile=RuntimeProfile(seed=SEED))
        report = service.build(AlgorithmSpec("send-v", k=K), service_dataset)
        assert isinstance(report, BuildReport)
        assert report.name == "Send-V" and report.version == 1
        assert report.metadata.seed == SEED
        assert report.metadata.build["rounds"] == report.result.num_rounds
        assert report.metadata.build["dataset"] == "svc-zipf"
        assert report.result.details["store_entry"]["version"] == 1
        again = service.build(AlgorithmSpec("send-v", k=K), service_dataset)
        assert again.version == 2

    def test_build_accepts_name_string_instance_and_override(self, service_dataset):
        service = SynopsisService(profile=RuntimeProfile(seed=SEED))
        by_string = service.build("send-v", service_dataset)
        assert by_string.name == "Send-V" and by_string.metadata.k == 30
        by_instance = service.build(SendV(U, K), service_dataset, name="renamed")
        assert by_instance.name == "renamed"
        assert service.store.names() == ["Send-V", "renamed"]

    def test_single_name_query_matches_the_engine(self, service_dataset):
        service = SynopsisService(profile=RuntimeProfile(seed=SEED))
        report = service.build(AlgorithmSpec("send-v", k=K), service_dataset)
        workload = WorkloadGenerator(U, seed=3).generate(500, "mixed")
        answers = service.query_workload(report.name, workload)
        engine = service.store.load(report.name).engine()
        assert np.array_equal(
            answers[report.name],
            engine.range_sum_many(workload.los, workload.his),
        )

    def test_fanout_result_keys_follow_input_order(self, service_dataset):
        service = SynopsisService(profile=RuntimeProfile(seed=SEED))
        service.build(AlgorithmSpec("send-v", k=K), service_dataset, name="b")
        service.build(AlgorithmSpec("h-wtopk", k=K), service_dataset, name="a")
        answers = service.query(["b", "a"], [1, 10], [U, 20])
        assert list(answers) == ["b", "a"]
        assert all(estimate.shape == (2,) for estimate in answers.values())

    def test_fanout_rejects_bad_inputs(self, service_dataset):
        service = SynopsisService(profile=RuntimeProfile(seed=SEED))
        service.build(AlgorithmSpec("send-v", k=K), service_dataset)
        with pytest.raises(InvalidParameterError):
            service.query([], [1], [2])
        with pytest.raises(InvalidParameterError):
            service.query(["Send-V", "Send-V"], [1], [2])
        with pytest.raises(InvalidParameterError):
            service.query(["Send-V"], [1, 2], [3])
        empty = service.query(["Send-V"], [], [])
        assert empty["Send-V"].size == 0

    def test_version_pins_in_fanout(self, service_dataset):
        service = SynopsisService(profile=RuntimeProfile(seed=SEED))
        first = service.build(AlgorithmSpec("send-v", k=K), service_dataset)
        second = service.build(AlgorithmSpec("send-v", k=4), service_dataset)
        assert (first.version, second.version) == (1, 2)
        los, his = [1], [U]
        pinned = service.query(["Send-V"], los, his,
                               versions={"Send-V": 1})["Send-V"]
        engine = service.store.load("Send-V", 1).engine()
        assert np.array_equal(pinned, engine.range_sum_many(
            np.asarray(los, dtype=np.int64), np.asarray(his, dtype=np.int64)))

    def test_stats_count_fanout_batches(self, service_dataset):
        service = SynopsisService(profile=RuntimeProfile(seed=SEED))
        service.build(AlgorithmSpec("send-v", k=K), service_dataset, name="x")
        service.build(AlgorithmSpec("send-v", k=K), service_dataset, name="y")
        service.query(["x", "y"], [1, 2], [10, 20])
        stats = service.stats()
        assert stats["fanout_batches"] == 1
        assert stats["fanout_queries"] == 4  # 2 queries x 2 synopses

    def test_catalog_and_refresh(self, service_dataset):
        service = SynopsisService(profile=RuntimeProfile(seed=SEED))
        service.build(AlgorithmSpec("send-v", k=K), service_dataset)
        assert [metadata.name for metadata in service.catalog()] == ["Send-V"]
        service.query(["Send-V"], [1], [U])
        service.build(AlgorithmSpec("send-v", k=K), service_dataset)
        # Until refreshed, the served version stays pinned at 1.
        assert service.server.synopsis("Send-V").metadata.version == 1
        service.refresh()
        assert service.server.synopsis("Send-V").metadata.version == 2


class TestFanoutDeterminism:
    """Fan-out answers are bit-identical across executors and backends."""

    @pytest.fixture(scope="class")
    def reports(self, service_dataset):
        """Build two synopses into one memory store; reuse across the class."""
        service = SynopsisService(profile=RuntimeProfile(seed=SEED))
        first = service.build(AlgorithmSpec("send-v", k=K), service_dataset,
                              name="web")
        second = service.build(
            AlgorithmSpec("twolevel-s", k=K, parameters={"epsilon": 0.05}),
            service_dataset, name="orders")
        return service, (first, second)

    def test_serial_and_parallel_fanout_agree(self, reports):
        serial_service, _ = reports
        workload = WorkloadGenerator(U, seed=23).generate(5_000, "mixed")
        serial = serial_service.query_workload(["web", "orders"], workload)

        executor = ParallelExecutor(max_workers=2)
        try:
            parallel_service = SynopsisService(
                store=serial_service.store,
                profile=RuntimeProfile(executor=executor),
                shard_size=512,
            )
            parallel = parallel_service.query_workload(["web", "orders"], workload)
        finally:
            executor.close()
        for name in ("web", "orders"):
            assert np.array_equal(serial[name], parallel[name])

    def test_repeat_queries_are_bit_identical(self, reports):
        service, _ = reports
        workload = WorkloadGenerator(U, seed=29).generate(1_000, "zipfian")
        first = service.query_workload(["web", "orders"], workload)
        second = service.query_workload(["web", "orders"], workload)
        for name in ("web", "orders"):
            assert np.array_equal(first[name], second[name])


class TestBuildMany:
    """The concurrent build queue: scheduled batches publish bit-identical
    versions, in request order, for any concurrency."""

    def _requests(self, service_dataset):
        return [
            BuildRequest(AlgorithmSpec("send-v", k=K), service_dataset, "web"),
            BuildRequest(AlgorithmSpec("h-wtopk", k=K), service_dataset, "orders"),
            BuildRequest(
                AlgorithmSpec("twolevel-s", k=K, parameters={"epsilon": 0.05}),
                service_dataset, "clicks"),
        ]

    def test_concurrent_builds_match_sequential_checksums(self, service_dataset):
        profile = RuntimeProfile(seed=SEED)
        sequential_service = SynopsisService(profile=profile)
        sequential = [sequential_service.build(r.algorithm, r.dataset, name=r.name)
                      for r in self._requests(service_dataset)]

        concurrent_service = SynopsisService(profile=profile)
        concurrent = concurrent_service.build_many(
            self._requests(service_dataset), concurrent_jobs=3)

        assert [r.name for r in concurrent] == ["web", "orders", "clicks"]
        for expected, actual in zip(sequential, concurrent):
            assert actual.version == 1
            assert actual.checksum_sha256 == expected.checksum_sha256
            assert (actual.result.histogram.coefficients
                    == expected.result.histogram.coefficients)
            assert (actual.result.counters.as_dict()
                    == expected.result.counters.as_dict())

    def test_profile_concurrency_and_tuple_requests(self, service_dataset):
        profile = RuntimeProfile(seed=SEED, concurrent_jobs=2)
        service = SynopsisService(profile=profile)
        reports = service.build_many([
            ("send-v", service_dataset, "a"),
            (AlgorithmSpec("send-coef", k=K), service_dataset, "b"),
        ])
        assert [r.name for r in reports] == ["a", "b"]
        assert service.store.names() == ["a", "b"]

    def test_sequential_fallback_is_identical(self, service_dataset):
        profile = RuntimeProfile(seed=SEED)
        service = SynopsisService(profile=profile)
        one_at_a_time = service.build_many(self._requests(service_dataset),
                                           concurrent_jobs=1)
        other = SynopsisService(profile=profile)
        scheduled = other.build_many(self._requests(service_dataset),
                                     concurrent_jobs=3)
        for expected, actual in zip(one_at_a_time, scheduled):
            assert actual.checksum_sha256 == expected.checksum_sha256

    def test_bad_requests_are_rejected(self, service_dataset):
        service = SynopsisService(profile=RuntimeProfile(seed=SEED))
        with pytest.raises(InvalidParameterError, match="BuildRequest"):
            service.build_many([("send-v",)])
        with pytest.raises(InvalidParameterError, match="concurrent_jobs"):
            service.build_many([("send-v", service_dataset)], concurrent_jobs=0)


class TestServiceSmoke:
    """The CI smoke: registry build x fan-out query on the memory backend.

    ``REPRO_API_PATH=shim`` additionally routes one build through the
    deprecated kwarg surface and asserts it is byte-identical to the profile
    path (same stored checksum).
    """

    def test_build_two_fanout_deterministically(self, service_dataset):
        api_path = os.environ.get("REPRO_API_PATH", "profile")
        profile = RuntimeProfile(seed=SEED)
        service = SynopsisService(profile=profile)
        assert isinstance(service.store.backend, MemoryBackend)

        web = service.build(AlgorithmSpec("send-v", k=K), service_dataset,
                            name="web")
        orders = service.build(
            AlgorithmSpec("twolevel-s", k=K, parameters={"epsilon": 0.05}),
            service_dataset, name="orders")

        if api_path == "shim":
            # The deprecated spelling must publish byte-identical synopses.
            legacy = _legacy_run(
                make_algorithm("send-v", u=service_dataset.u, k=K),
                service_dataset,
                cluster=profile.resolved_cluster(), seed=profile.seed,
                store=service.store, store_name="web-shim")
            shim_metadata = service.store.load("web-shim").metadata
            assert shim_metadata.checksum_sha256 == web.checksum_sha256
            assert legacy.histogram.coefficients == \
                service.store.load("web").histogram.coefficients

        workload = WorkloadGenerator(U, seed=41).generate(2_000, "mixed")
        first = service.query_workload(["web", "orders"], workload)
        second = service.query_workload(["web", "orders"], workload)
        assert list(first) == ["web", "orders"]
        for name, estimates in first.items():
            assert estimates.shape == (2_000,)
            assert np.array_equal(estimates, second[name])
        assert web.version == 1 and orders.version == 1
