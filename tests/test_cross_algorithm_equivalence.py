"""Cross-algorithm equivalence: independent paths to the same top-k coefficients.

The exact algorithms (Send-V, Send-Coef, H-WTopk) and the sketch algorithm at
negligible sketch error must all agree with the direct centralized computation
— ``haar_transform`` of the exact frequency vector followed by top-k selection
— on ``tiny_dataset``.  Each algorithm reaches the answer through a different
code path (dense transform at the reducer, sparse per-split transforms, GCS
sketch estimation), so agreement here pins the whole pipeline to the paper's
Section 2.1 definition.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import HWTopk, SendCoef, SendSketch, SendV
from repro.core.haar import haar_transform
from repro.core.topk_coefficients import top_k_from_dense
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.hdfs import HDFS

K = 8
SEED = 11


@pytest.fixture(scope="module")
def direct_top_k(tiny_dataset):
    """The centralized reference: dense transform of the exact frequency vector."""
    dense = tiny_dataset.frequency_vector().to_dense()
    return top_k_from_dense(haar_transform(dense), K)


def _run(algorithm, tiny_dataset):
    cluster = paper_cluster(split_size_bytes=max(4, tiny_dataset.size_bytes // 4))
    hdfs = HDFS(datanodes=["n0", "n1"])
    tiny_dataset.to_hdfs(hdfs, "/data/input")
    return algorithm.run(hdfs, "/data/input", cluster=cluster, seed=SEED)


def _assert_matches_direct(coefficients, direct, atol=1e-9):
    assert set(coefficients) == set(direct)
    for index, value in direct.items():
        assert coefficients[index] == pytest.approx(value, abs=atol)


def test_send_v_matches_direct_computation(tiny_dataset, direct_top_k):
    result = _run(SendV(tiny_dataset.u, K), tiny_dataset)
    _assert_matches_direct(result.histogram.coefficients, direct_top_k)


def test_send_coef_matches_direct_computation(tiny_dataset, direct_top_k):
    result = _run(SendCoef(tiny_dataset.u, K), tiny_dataset)
    _assert_matches_direct(result.histogram.coefficients, direct_top_k)


def test_hwtopk_matches_direct_computation(tiny_dataset, direct_top_k):
    result = _run(HWTopk(tiny_dataset.u, K), tiny_dataset)
    _assert_matches_direct(result.histogram.coefficients, direct_top_k)


def test_send_sketch_at_negligible_error_matches_direct(tiny_dataset, direct_top_k):
    # A sketch budget far above the domain's energy requirements drives the GCS
    # estimation error to (near) zero, so the sketch path must find the same
    # top-k coefficients as the exact computation.
    result = _run(
        SendSketch(tiny_dataset.u, K, bytes_per_level=64 * 1024), tiny_dataset
    )
    sketch = result.histogram.coefficients
    assert set(sketch) == set(direct_top_k)
    for index, value in direct_top_k.items():
        assert sketch[index] == pytest.approx(value, rel=1e-6, abs=1e-6)


def test_exact_algorithms_agree_pairwise(tiny_dataset):
    send_v = _run(SendV(tiny_dataset.u, K), tiny_dataset).histogram.coefficients
    send_coef = _run(SendCoef(tiny_dataset.u, K), tiny_dataset).histogram.coefficients
    assert set(send_v) == set(send_coef)
    for index in send_v:
        assert send_v[index] == pytest.approx(send_coef[index], abs=1e-9)


def test_direct_energy_dominates(tiny_dataset, direct_top_k):
    """Sanity: the selected k coefficients capture the largest magnitudes."""
    dense = haar_transform(tiny_dataset.frequency_vector().to_dense())
    magnitudes = np.sort(np.abs(dense))[::-1]
    selected = sorted((abs(v) for v in direct_top_k.values()), reverse=True)
    np.testing.assert_allclose(selected, magnitudes[:K], rtol=1e-12)
