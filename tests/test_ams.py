"""Tests for the AMS / tug-of-war sketch (repro.sketches.ams)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SketchError
from repro.sketches.ams import AmsSketch


class TestAmsBasics:
    def test_estimate_of_isolated_heavy_item(self):
        sketch = AmsSketch(depth=5, width=512, seed=1)
        sketch.update(42, 1000.0)
        for item, count in [(7, 1.0), (9, 2.0), (13, 1.0)]:
            sketch.update(item, count)
        assert sketch.estimate(42) == pytest.approx(1000.0, rel=0.05)

    def test_estimate_unseen_item_is_small(self):
        sketch = AmsSketch(depth=5, width=512, seed=2)
        for item in range(100):
            sketch.update(item, 1.0)
        assert abs(sketch.estimate(10_000)) <= 5.0

    def test_update_count_and_cells(self):
        sketch = AmsSketch(depth=3, width=16, seed=3)
        sketch.update(1)
        sketch.update(2, 5)
        assert sketch.update_count == 2
        assert sketch.total_cells == 48

    def test_second_moment_estimate(self):
        rng = np.random.default_rng(4)
        sketch = AmsSketch(depth=7, width=1024, seed=4)
        frequencies = rng.integers(1, 50, size=200)
        for item, frequency in enumerate(frequencies):
            sketch.update(item, float(frequency))
        true_f2 = float((frequencies.astype(float) ** 2).sum())
        assert sketch.second_moment() == pytest.approx(true_f2, rel=0.35)

    def test_invalid_dimensions(self):
        with pytest.raises(SketchError):
            AmsSketch(depth=0, width=8)
        with pytest.raises(SketchError):
            AmsSketch(depth=2, width=0)


class TestAmsLinearity:
    def test_merge_equals_sketch_of_union(self):
        a = AmsSketch(depth=4, width=64, seed=9)
        b = AmsSketch(depth=4, width=64, seed=9)
        combined = AmsSketch(depth=4, width=64, seed=9)
        for item, count in [(1, 3.0), (2, 5.0)]:
            a.update(item, count)
            combined.update(item, count)
        for item, count in [(2, 7.0), (9, 1.0)]:
            b.update(item, count)
            combined.update(item, count)
        merged = a.merge(b)
        for item in (1, 2, 9, 50):
            assert merged.estimate(item) == pytest.approx(combined.estimate(item))
        assert merged.update_count == combined.update_count

    def test_merge_requires_same_seed_and_shape(self):
        a = AmsSketch(depth=4, width=64, seed=1)
        assert not a.is_compatible(AmsSketch(depth=4, width=64, seed=2))
        assert not a.is_compatible(AmsSketch(depth=3, width=64, seed=1))
        with pytest.raises(SketchError):
            a.merge(AmsSketch(depth=4, width=32, seed=1))

    def test_negative_updates_cancel(self):
        sketch = AmsSketch(depth=5, width=128, seed=5)
        sketch.update(3, 10.0)
        sketch.update(3, -10.0)
        assert sketch.estimate(3) == pytest.approx(0.0, abs=1e-9)
        assert sketch.nonzero_entries() == 0

    def test_serialized_size_tracks_nonzero_cells(self):
        sketch = AmsSketch(depth=2, width=64, seed=6)
        assert sketch.serialized_size_bytes() == 0
        sketch.update(5, 2.0)
        assert sketch.serialized_size_bytes() == sketch.nonzero_entries() * 12
        assert sketch.nonzero_entries() == 2  # one cell per row
