"""Tests for the running-time cost model (repro.cost.model)."""

from __future__ import annotations

import pytest

from repro.mapreduce.cluster import MachineSpec, ClusterSpec, paper_cluster
from repro.mapreduce.counters import CounterNames, Counters
from repro.mapreduce.runtime import JobResult
from repro.cost.model import CostModel, CostParameters


def _result(counters: dict, num_mappers: int = 4, num_reducers: int = 1) -> JobResult:
    return JobResult(job_name="test", output=[], counters=Counters(dict(counters)),
                     num_mappers=num_mappers, num_reducers=num_reducers)


class TestPhaseTimes:
    def test_overhead_only_job(self):
        cluster = paper_cluster()
        model = CostModel(cluster)
        times = model.round_times(_result({}))
        assert times.map_s == 0
        assert times.shuffle_s == 0
        assert times.reduce_s == 0
        assert times.total_s == pytest.approx(cluster.job_overhead_s + cluster.task_overhead_s)

    def test_shuffle_time_is_bytes_over_bandwidth(self):
        cluster = paper_cluster(available_bandwidth_fraction=0.5)
        model = CostModel(cluster)
        bytes_shuffled = 6_250_000  # exactly one second at 50 Mbps
        times = model.round_times(_result({CounterNames.SHUFFLE_BYTES: bytes_shuffled}))
        assert times.shuffle_s == pytest.approx(1.0)

    def test_map_io_scales_with_parallelism(self):
        machines = [MachineSpec(f"m{i}", disk_mb_per_s=100, cpu_ghz=2.0) for i in range(4)]
        cluster = ClusterSpec(machines=machines)
        model = CostModel(cluster)
        counters = {CounterNames.MAP_INPUT_BYTES: 400 * 1024 * 1024}
        four_mappers = model.round_times(_result(counters, num_mappers=4))
        one_mapper = model.round_times(_result(counters, num_mappers=1))
        # 400 MB at 100 MB/s is 4 s of scan; spread over 4 mappers it is 1 s.
        assert four_mappers.map_s == pytest.approx(1.0)
        assert one_mapper.map_s == pytest.approx(4.0)

    def test_cpu_costs_use_per_operation_constants(self):
        cluster = ClusterSpec(machines=[MachineSpec("m", cpu_ghz=2.0)])
        params = CostParameters(seconds_per_hashmap_update=1e-6, nominal_cpu_ghz=2.0)
        model = CostModel(cluster, parameters=params)
        times = model.round_times(_result({CounterNames.HASHMAP_UPDATES: 1_000_000},
                                          num_mappers=1))
        assert times.map_s == pytest.approx(1.0)

    def test_slower_cpu_increases_cost(self):
        slow = ClusterSpec(machines=[MachineSpec("m", cpu_ghz=1.0)])
        fast = ClusterSpec(machines=[MachineSpec("m", cpu_ghz=4.0)])
        counters = {CounterNames.WAVELET_TRANSFORM_OPS: 10_000_000}
        slow_s = CostModel(slow).round_times(_result(counters, num_mappers=1)).map_s
        fast_s = CostModel(fast).round_times(_result(counters, num_mappers=1)).map_s
        assert slow_s == pytest.approx(4 * fast_s)

    def test_reduce_and_side_channels(self):
        cluster = paper_cluster()
        model = CostModel(cluster)
        times = model.round_times(_result({
            CounterNames.REDUCE_INPUT_RECORDS: 1_000_000,
            CounterNames.DISTRIBUTED_CACHE_BYTES: 6_250_000,
        }))
        assert times.reduce_s > 0
        assert times.side_channel_s == pytest.approx(1.0)

    def test_waves_add_task_overhead(self):
        cluster = paper_cluster()  # 16 map slots
        model = CostModel(cluster)
        one_wave = model.round_times(_result({}, num_mappers=16)).overhead_s
        two_waves = model.round_times(_result({}, num_mappers=32)).overhead_s
        assert two_waves == pytest.approx(one_wave + cluster.task_overhead_s)


class TestAggregation:
    def test_total_seconds_sums_rounds(self):
        cluster = paper_cluster()
        model = CostModel(cluster)
        results = [_result({}), _result({})]
        assert model.total_seconds(results) == pytest.approx(
            2 * model.round_seconds(results[0])
        )

    def test_total_communication(self):
        cluster = paper_cluster()
        model = CostModel(cluster)
        results = [
            _result({CounterNames.SHUFFLE_BYTES: 100}),
            _result({CounterNames.SHUFFLE_BYTES: 50,
                     CounterNames.DISTRIBUTED_CACHE_BYTES: 10}),
        ]
        assert model.total_communication_bytes(results) == 160

    def test_breakdown_returns_one_entry_per_round(self):
        model = CostModel(paper_cluster())
        assert len(model.breakdown([_result({}), _result({}), _result({})])) == 3

    def test_invalid_nominal_clock(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            CostModel(paper_cluster(), parameters=CostParameters(nominal_cpu_ghz=0))
