"""Property-based tests (hypothesis) for the vectorised numeric core.

The batched-numpy rewrites of ``haar_transform`` / ``sparse_haar_transform``
and the lexsort-based top-k selection must preserve the mathematical contract
of the originals on *arbitrary* signals, not just the fixtures:

* transform/inverse round-trip is the identity;
* the orthonormal transform preserves energy (Parseval);
* the sparse transform agrees with the dense transform;
* batched (2-D) transforms equal row-by-row 1-D transforms bit-for-bit;
* top-k selection matches the heap-based reference (same deterministic
  magnitude-then-index tie-break) on any coefficient mapping.
"""

from __future__ import annotations

import heapq

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.haar import (
    energy,
    haar_transform,
    inverse_haar_transform,
    sparse_haar_transform,
)
from repro.core.topk_coefficients import (
    bottom_k_items,
    top_k_coefficients,
    top_k_items,
)

LOG_U = st.integers(min_value=0, max_value=7)

FINITE = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False,
                   allow_infinity=False, width=64)


@st.composite
def signals(draw):
    u = 2 ** draw(LOG_U)
    return np.array(draw(st.lists(FINITE, min_size=u, max_size=u)), dtype=float)


@st.composite
def sparse_counts(draw):
    u = 2 ** draw(st.integers(min_value=1, max_value=10))
    keys = draw(st.lists(st.integers(min_value=1, max_value=u), min_size=0,
                         max_size=64, unique=True))
    return {key: draw(FINITE) for key in keys}, u


@st.composite
def coefficient_mappings(draw):
    indices = draw(st.lists(st.integers(min_value=1, max_value=1024), min_size=0,
                            max_size=64, unique=True))
    return {index: draw(FINITE) for index in indices}


@given(signals())
@settings(max_examples=200, deadline=None)
def test_round_trip_is_identity(v):
    reconstructed = inverse_haar_transform(haar_transform(v))
    np.testing.assert_allclose(reconstructed, v, rtol=1e-9, atol=1e-6 * (1 + np.abs(v).max()))


@given(signals())
@settings(max_examples=200, deadline=None)
def test_parseval_energy_preservation(v):
    w = haar_transform(v)
    np.testing.assert_allclose(energy(w), energy(v), rtol=1e-9, atol=1e-6)


@given(sparse_counts())
@settings(max_examples=200, deadline=None)
def test_sparse_transform_agrees_with_dense(counts_and_u):
    counts, u = counts_and_u
    dense = np.zeros(u, dtype=float)
    for key, count in counts.items():
        dense[key - 1] = count
    expected = haar_transform(dense)
    sparse = sparse_haar_transform(counts, u)
    actual = np.zeros(u, dtype=float)
    for index, value in sparse.items():
        actual[index - 1] = value
    scale = 1 + np.abs(expected).max()
    np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1e-9 * scale)


FIXED_WIDTH_SIGNAL = st.lists(FINITE, min_size=16, max_size=16).map(
    lambda values: np.array(values, dtype=float)
)


@given(st.lists(FIXED_WIDTH_SIGNAL, min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_batched_transform_equals_per_row(rows):
    batch = np.stack(rows)
    batched = haar_transform(batch)
    for row_index in range(batch.shape[0]):
        assert np.array_equal(batched[row_index], haar_transform(batch[row_index]))
    restored = inverse_haar_transform(batched)
    for row_index in range(batch.shape[0]):
        assert np.array_equal(
            restored[row_index], inverse_haar_transform(batched[row_index])
        )


@given(coefficient_mappings(), st.integers(min_value=1, max_value=70))
@settings(max_examples=200, deadline=None)
def test_top_k_coefficients_matches_heap_reference(coefficients, k):
    expected = {
        index: value
        for index, value in heapq.nlargest(
            k, coefficients.items(), key=lambda item: (abs(item[1]), -item[0])
        )
        if value != 0.0
    }
    actual = top_k_coefficients(coefficients, k)
    assert actual == expected
    # Selection order (descending magnitude) is part of the contract.
    assert list(actual) == list(expected)


@given(coefficient_mappings(), st.integers(min_value=1, max_value=70))
@settings(max_examples=200, deadline=None)
def test_top_and_bottom_k_items_match_heap_reference(scores, k):
    assert top_k_items(scores, k) == tuple(
        heapq.nlargest(k, scores.items(), key=lambda item: (item[1], -item[0]))
    )
    assert bottom_k_items(scores, k) == tuple(
        heapq.nsmallest(k, scores.items(), key=lambda item: (item[1], item[0]))
    )
