"""Tests for job configuration, distributed cache and state store (repro.mapreduce)."""

from __future__ import annotations

import pytest

from repro.errors import DistributedCacheError, JobConfigurationError
from repro.mapreduce.api import Mapper, Reducer
from repro.mapreduce.job import DistributedCache, JobConfiguration, MapReduceJob, hash_partitioner
from repro.mapreduce.state import StateStore


class TestJobConfiguration:
    def test_set_get_default(self):
        conf = JobConfiguration()
        conf.set("a", 1)
        assert conf.get("a") == 1
        assert conf.get("missing", 7) == 7
        assert "a" in conf and "missing" not in conf
        assert len(conf) == 1

    def test_require_raises_when_missing(self):
        conf = JobConfiguration({"present": 1})
        assert conf.require("present") == 1
        with pytest.raises(JobConfigurationError):
            conf.require("absent")

    def test_as_dict_returns_copy(self):
        conf = JobConfiguration({"a": 1})
        snapshot = conf.as_dict()
        snapshot["a"] = 2
        assert conf.get("a") == 1

    def test_serialized_size_counts_keys_and_values(self):
        conf = JobConfiguration({"ab": 1, "cd": 2.0})
        # 2 + 4 (int) + 2 + 8 (float) = 16 bytes.
        assert conf.serialized_size_bytes() == 16

    def test_serialized_size_handles_odd_values(self):
        conf = JobConfiguration({"x": object()})
        assert conf.serialized_size_bytes() > 0


class TestDistributedCache:
    def test_add_get_and_sizes(self):
        cache = DistributedCache()
        cache.add("candidates", [1, 2, 3])
        assert cache.get("candidates") == [1, 2, 3]
        assert cache.size_bytes("candidates") == 12
        assert cache.total_size_bytes() == 12
        assert "candidates" in cache and len(cache) == 1

    def test_explicit_size_overrides(self):
        cache = DistributedCache()
        cache.add("blob", object(), size_bytes=100)
        assert cache.size_bytes("blob") == 100

    def test_missing_entry_raises(self):
        cache = DistributedCache()
        with pytest.raises(DistributedCacheError):
            cache.get("nope")
        with pytest.raises(DistributedCacheError):
            cache.size_bytes("nope")


class TestMapReduceJobValidation:
    def test_requires_reducers_and_classes(self):
        with pytest.raises(JobConfigurationError):
            MapReduceJob(name="j", input_path="/x", mapper_class=Mapper,
                         reducer_class=Reducer, num_reducers=0)
        with pytest.raises(JobConfigurationError):
            MapReduceJob(name="j", input_path="/x", mapper_class=None, reducer_class=Reducer)

    def test_hash_partitioner_range(self):
        for key in (0, 1, "abc", 12345):
            assert 0 <= hash_partitioner(key, 4) < 4


class TestStateStore:
    def test_save_load_roundtrip(self):
        store = StateStore()
        store.save("split", 3, {"remaining": {1: 2.0}})
        assert store.load("split", 3) == {"remaining": {1: 2.0}}
        assert store.exists("split", 3)
        assert not store.exists("split", 4)

    def test_load_default(self):
        store = StateStore()
        assert store.load("reducer", 0, default="fallback") == "fallback"

    def test_overwrite_replaces_previous_blob(self):
        store = StateStore()
        store.save("split", 1, "first")
        store.save("split", 1, "second")
        assert store.load("split", 1) == "second"

    def test_byte_accounting(self):
        store = StateStore()
        store.save("split", 1, None, size_bytes=120)
        assert store.bytes_written == 120

    def test_clear(self):
        store = StateStore()
        store.save("split", 1, "x")
        store.clear()
        assert len(store) == 0
        assert store.bytes_written == 0

    def test_keys_listing(self):
        store = StateStore()
        store.save("split", 2, "a")
        store.save("reducer", 0, "b")
        assert store.keys() == [("reducer", 0), ("split", 2)]
