"""Tests for the error hierarchy and the package's public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        error_classes = [
            errors.InvalidDomainError,
            errors.InvalidParameterError,
            errors.KeyOutOfDomainError,
            errors.HdfsError,
            errors.FileNotFoundInHdfsError,
            errors.FileAlreadyExistsError,
            errors.MapReduceError,
            errors.JobConfigurationError,
            errors.DistributedCacheError,
            errors.SketchError,
            errors.SamplingError,
            errors.TopKError,
        ]
        for error_class in error_classes:
            assert issubclass(error_class, errors.ReproError)

    def test_hdfs_errors_are_hdfs_errors(self):
        assert issubclass(errors.FileNotFoundInHdfsError, errors.HdfsError)
        assert issubclass(errors.FileAlreadyExistsError, errors.HdfsError)

    def test_mapreduce_errors_are_mapreduce_errors(self):
        assert issubclass(errors.JobConfigurationError, errors.MapReduceError)
        assert issubclass(errors.DistributedCacheError, errors.MapReduceError)

    def test_catching_the_base_class_catches_concrete_errors(self):
        with pytest.raises(errors.ReproError):
            raise errors.SketchError("boom")


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_a_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_key_entry_points_are_importable(self):
        from repro import (  # noqa: F401
            HWTopk,
            SendV,
            TwoLevelSampling,
            WaveletHistogram,
            ZipfDatasetGenerator,
            paper_cluster,
        )
        from repro.experiments import figures  # noqa: F401
        from repro.sketches import WaveletGcsSketch  # noqa: F401
        from repro.topk import signed_tput_topk  # noqa: F401

    def test_algorithm_names_are_the_papers(self):
        from repro.algorithms import (
            BasicSampling,
            HWTopk,
            ImprovedSampling,
            SendCoef,
            SendSketch,
            SendV,
            TwoLevelSampling,
        )

        assert SendV.name == "Send-V"
        assert SendCoef.name == "Send-Coef"
        assert HWTopk.name == "H-WTopk"
        assert SendSketch.name == "Send-Sketch"
        assert BasicSampling.name == "Basic-S"
        assert ImprovedSampling.name == "Improved-S"
        assert TwoLevelSampling.name == "TwoLevel-S"
