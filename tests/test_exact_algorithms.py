"""Tests for the exact MapReduce algorithms: Send-V, Send-Coef and H-WTopk."""

from __future__ import annotations

import pytest

from repro.algorithms import HWTopk, SendCoef, SendV
from repro.core.haar import sparse_haar_transform
from repro.core.histogram import WaveletHistogram
from repro.core.topk_coefficients import top_k_coefficients
from repro.mapreduce.counters import CounterNames

K = 20


@pytest.fixture(scope="module")
def exact_setup(request):
    """Shared dataset, HDFS and cluster plus the centralized reference answer."""
    from repro.data.generators import ZipfDatasetGenerator
    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.hdfs import HDFS

    dataset = ZipfDatasetGenerator(u=256, alpha=1.1, seed=7).generate(20_000)
    hdfs = HDFS()
    dataset.to_hdfs(hdfs, "/data/input")
    cluster = paper_cluster(split_size_bytes=dataset.size_bytes // 8)
    reference = dataset.frequency_vector()
    expected = top_k_coefficients(sparse_haar_transform(reference.counts, dataset.u), K)
    return dataset, hdfs, cluster, reference, expected


def _assert_same_topk(actual, expected):
    """Same coefficient values per index; tie indices may differ only at equal magnitude."""
    assert len(actual) == len(expected)
    for index, value in actual.items():
        if index in expected:
            assert value == pytest.approx(expected[index], rel=1e-9)
    actual_magnitudes = sorted((abs(v) for v in actual.values()), reverse=True)
    expected_magnitudes = sorted((abs(v) for v in expected.values()), reverse=True)
    assert actual_magnitudes == pytest.approx(expected_magnitudes, rel=1e-9)


class TestSendV:
    def test_matches_centralized_topk(self, exact_setup):
        dataset, hdfs, cluster, _, expected = exact_setup
        result = SendV(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        _assert_same_topk(result.histogram.coefficients, expected)

    def test_single_round_and_metrics(self, exact_setup):
        dataset, hdfs, cluster, _, _ = exact_setup
        result = SendV(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        assert result.num_rounds == 1
        assert result.communication_bytes > 0
        assert result.simulated_time_s > 0

    def test_communication_counts_every_distinct_key_per_split(self, exact_setup):
        dataset, hdfs, cluster, _, _ = exact_setup
        result = SendV(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        shuffled_pairs = result.counters.get(CounterNames.SHUFFLE_RECORDS)
        # Every split ships one pair per distinct key it holds, 8 bytes each.
        assert result.rounds[0].shuffle_bytes == shuffled_pairs * 8
        assert shuffled_pairs >= dataset.frequency_vector().distinct_keys

    def test_sse_equals_ideal(self, exact_setup):
        dataset, hdfs, cluster, reference, _ = exact_setup
        result = SendV(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        ideal = WaveletHistogram.from_frequency_vector(reference, K).sse(reference)
        assert result.histogram.sse(reference) == pytest.approx(ideal, rel=1e-9)

    def test_combiner_variant_gives_same_answer(self, exact_setup):
        dataset, hdfs, cluster, _, expected = exact_setup
        result = SendV(dataset.u, K, use_combiner=True).run(hdfs, "/data/input", cluster=cluster)
        _assert_same_topk(result.histogram.coefficients, expected)

    @pytest.mark.parametrize("num_reducers", [2, 3, 7])
    def test_multi_reducer_output_is_identical_to_single_reducer(self, exact_setup,
                                                                 num_reducers):
        """Sharded aggregation: the multi-reducer top-k equals the 1-reducer run
        bit for bit, on both data planes."""
        dataset, hdfs, cluster, _, _ = exact_setup
        baseline = SendV(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        for data_plane in ("batch", "records"):
            sharded = SendV(dataset.u, K, num_reducers=num_reducers).run(
                hdfs, "/data/input", cluster=cluster, data_plane=data_plane)
            assert (sharded.histogram.coefficients
                    == baseline.histogram.coefficients)
            assert sharded.rounds[0].num_reducers == num_reducers
            # The sharding changes where the aggregation runs, not what is
            # shuffled: the communication metric is unchanged.
            assert sharded.rounds[0].shuffle_bytes == baseline.rounds[0].shuffle_bytes

    def test_multi_reducer_distributes_the_key_groups(self, exact_setup):
        dataset, hdfs, cluster, _, _ = exact_setup
        result = SendV(dataset.u, K, num_reducers=4).run(hdfs, "/data/input",
                                                         cluster=cluster)
        # Every reducer received a share of the keys: the emitted partial
        # vectors jointly cover every distinct key exactly once.
        emitted_keys = [key for key, _ in result.rounds[0].output]
        assert len(emitted_keys) == len(set(emitted_keys))
        assert len(emitted_keys) == dataset.frequency_vector().distinct_keys

    def test_invalid_num_reducers_raises(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            SendV(256, K, num_reducers=0)


class TestSendCoef:
    def test_matches_centralized_topk(self, exact_setup):
        dataset, hdfs, cluster, _, expected = exact_setup
        result = SendCoef(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        _assert_same_topk(result.histogram.coefficients, expected)

    def test_ships_more_pairs_than_send_v_on_large_domains(self):
        """Figure 12's observation: local coefficients outnumber local distinct keys."""
        from repro.data.generators import ZipfDatasetGenerator
        from repro.mapreduce.cluster import paper_cluster
        from repro.mapreduce.hdfs import HDFS

        dataset = ZipfDatasetGenerator(u=4096, alpha=1.1, seed=3).generate(20_000)
        hdfs = HDFS()
        dataset.to_hdfs(hdfs, "/data/input")
        cluster = paper_cluster(split_size_bytes=dataset.size_bytes // 8)
        send_v = SendV(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        send_coef = SendCoef(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        assert send_coef.communication_bytes > send_v.communication_bytes

    def test_counts_transform_work(self, exact_setup):
        dataset, hdfs, cluster, _, _ = exact_setup
        result = SendCoef(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        assert result.counters.get(CounterNames.WAVELET_TRANSFORM_OPS) > 0


class TestHWTopk:
    def test_matches_centralized_topk(self, exact_setup):
        dataset, hdfs, cluster, _, expected = exact_setup
        result = HWTopk(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        _assert_same_topk(result.histogram.coefficients, expected)

    def test_uses_three_rounds(self, exact_setup):
        dataset, hdfs, cluster, _, _ = exact_setup
        result = HWTopk(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        assert result.num_rounds == 3
        assert [round_result.job_name for round_result in result.rounds] == [
            f"H-WTopk-round{i}(k={K})" for i in (1, 2, 3)
        ]

    def test_thresholds_and_candidates_reported(self, exact_setup):
        dataset, hdfs, cluster, _, _ = exact_setup
        result = HWTopk(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        assert result.details["T1"] >= 0
        assert result.details["T2"] >= result.details["T1"]
        assert result.details["candidate_set_size"] >= K

    def test_communicates_less_than_send_v(self, exact_setup):
        dataset, hdfs, cluster, _, _ = exact_setup
        send_v = SendV(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        hwtopk = HWTopk(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        assert hwtopk.communication_bytes < send_v.communication_bytes

    def test_round_one_ships_at_most_2km_pairs(self, exact_setup):
        dataset, hdfs, cluster, _, _ = exact_setup
        result = HWTopk(dataset.u, K).run(hdfs, "/data/input", cluster=cluster)
        round1 = result.rounds[0]
        m = result.details["num_splits"]
        assert round1.counters.get(CounterNames.SHUFFLE_RECORDS) <= 2 * K * m

    def test_works_with_different_k(self, exact_setup):
        dataset, hdfs, cluster, reference, _ = exact_setup
        for k in (1, 5, 50):
            expected = top_k_coefficients(
                sparse_haar_transform(reference.counts, dataset.u), k
            )
            result = HWTopk(dataset.u, k).run(hdfs, "/data/input", cluster=cluster)
            _assert_same_topk(result.histogram.coefficients, expected)

    def test_single_split_dataset(self):
        """Degenerate m=1 case: everything happens on one mapper."""
        from repro.data.generators import ZipfDatasetGenerator
        from repro.mapreduce.cluster import paper_cluster
        from repro.mapreduce.hdfs import HDFS

        dataset = ZipfDatasetGenerator(u=128, alpha=1.0, seed=11).generate(3_000)
        hdfs = HDFS()
        dataset.to_hdfs(hdfs, "/data/one")
        cluster = paper_cluster(split_size_bytes=10 * dataset.size_bytes)
        reference = dataset.frequency_vector()
        expected = top_k_coefficients(sparse_haar_transform(reference.counts, dataset.u), 10)
        result = HWTopk(dataset.u, 10).run(hdfs, "/data/one", cluster=cluster)
        _assert_same_topk(result.histogram.coefficients, expected)
        assert result.details["num_splits"] == 1

    def test_uniform_data_still_exact(self):
        """Low-skew data exercises the pruning paths differently but stays exact."""
        from repro.data.generators import UniformDatasetGenerator
        from repro.mapreduce.cluster import paper_cluster
        from repro.mapreduce.hdfs import HDFS

        dataset = UniformDatasetGenerator(u=256, seed=13).generate(10_000)
        hdfs = HDFS()
        dataset.to_hdfs(hdfs, "/data/uniform")
        cluster = paper_cluster(split_size_bytes=dataset.size_bytes // 4)
        reference = dataset.frequency_vector()
        expected = top_k_coefficients(sparse_haar_transform(reference.counts, dataset.u), 15)
        result = HWTopk(dataset.u, 15).run(hdfs, "/data/uniform", cluster=cluster)
        _assert_same_topk(result.histogram.coefficients, expected)
