"""Determinism suite: the parallel executor must be bit-identical to serial.

For every one of the seven algorithms, running on ``small_dataset`` with a
fixed seed, the parallel executor must reproduce the serial executor exactly:
same histogram coefficients, same merged counter totals, same per-round
outputs and shuffle bytes.  This is the guarantee that makes the parallel
engine safe to use for every figure and benchmark — any scheduling- or
merge-order-dependence in the runtime shows up here as a float or ordering
diff.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    BasicSampling,
    HWTopk,
    ImprovedSampling,
    SendCoef,
    SendSketch,
    SendV,
    TwoLevelSampling,
)
from repro.mapreduce.cluster import ClusterSpec, MachineSpec
from repro.mapreduce.executor import (
    ParallelExecutor,
    SerialExecutor,
    create_executor,
    shared_executor,
)
from repro.mapreduce.hdfs import HDFS

U = 256
K = 10
EPSILON = 0.02
SEED = 7

ALGORITHM_FACTORIES = {
    "Send-V": lambda: SendV(U, K),
    "Send-V+combine": lambda: SendV(U, K, use_combiner=True),
    "Send-Coef": lambda: SendCoef(U, K),
    "H-WTopk": lambda: HWTopk(U, K),
    "Send-Sketch": lambda: SendSketch(U, K, bytes_per_level=1024),
    "Basic-S": lambda: BasicSampling(U, K, epsilon=EPSILON),
    "Improved-S": lambda: ImprovedSampling(U, K, epsilon=EPSILON),
    "TwoLevel-S": lambda: TwoLevelSampling(U, K, epsilon=EPSILON),
}


@pytest.fixture(scope="module")
def parallel_executor():
    """One process pool shared by the whole module (start-up amortised)."""
    executor = ParallelExecutor(max_workers=4)
    yield executor
    executor.close()


def _run(algorithm_factory, dataset, cluster, executor):
    hdfs = HDFS(datanodes=[machine.name for machine in cluster.machines])
    dataset.to_hdfs(hdfs, "/data/input")
    return algorithm_factory().run(hdfs, "/data/input", cluster=cluster,
                                   seed=SEED, executor=executor)


@pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
def test_parallel_matches_serial_bit_for_bit(name, small_dataset, small_cluster,
                                             parallel_executor):
    factory = ALGORITHM_FACTORIES[name]
    serial = _run(factory, small_dataset, small_cluster, SerialExecutor())
    parallel = _run(factory, small_dataset, small_cluster, parallel_executor)

    # The histogram: same coefficient indices and exactly equal values.
    assert serial.histogram.coefficients == parallel.histogram.coefficients

    # Every counter total, exactly (float equality is intentional: the merge
    # order at phase barriers is pinned to task order in both executors).
    assert serial.counters.as_dict() == parallel.counters.as_dict()

    # Per-round results: outputs in the same order, same communication.
    assert serial.num_rounds == parallel.num_rounds
    for serial_round, parallel_round in zip(serial.rounds, parallel.rounds):
        assert serial_round.output == parallel_round.output
        assert serial_round.shuffle_bytes == parallel_round.shuffle_bytes
        assert serial_round.counters.as_dict() == parallel_round.counters.as_dict()

    assert serial.communication_bytes == parallel.communication_bytes
    assert serial.simulated_time_s == parallel.simulated_time_s


def test_parallel_executor_bounded_by_slots(small_dataset, parallel_executor):
    """A cluster with one map slot still executes correctly (window of 1)."""
    one_slot = ClusterSpec(
        machines=[MachineSpec(name="only", map_slots=1, reduce_slots=1)],
        split_size_bytes=max(4, small_dataset.size_bytes // 4),
    )
    serial = _run(ALGORITHM_FACTORIES["Send-V"], small_dataset, one_slot,
                  SerialExecutor())
    parallel = _run(ALGORITHM_FACTORIES["Send-V"], small_dataset, one_slot,
                    parallel_executor)
    assert serial.histogram.coefficients == parallel.histogram.coefficients
    assert serial.counters.as_dict() == parallel.counters.as_dict()


def test_unpicklable_job_code_raises_executor_error(parallel_executor):
    """Local classes and lambda partitioners fail with a diagnosis, not a raw
    pickling traceback, and the pool stays usable afterwards."""
    import numpy as np

    from repro.errors import ExecutorError
    from repro.mapreduce.api import Mapper, Reducer
    from repro.mapreduce.cluster import paper_cluster
    from repro.mapreduce.job import MapReduceJob
    from repro.mapreduce.runtime import JobRunner

    class LocalMapper(Mapper):
        def map(self, record, context):
            context.emit(record, 1)

    class LocalReducer(Reducer):
        def reduce(self, key, values, context):
            context.emit(key, sum(values))

    hdfs = HDFS()
    hdfs.create_file("/input", np.arange(1, 2001))
    runner = JobRunner(hdfs, cluster=paper_cluster(split_size_bytes=1000),
                       executor=parallel_executor)
    with pytest.raises(ExecutorError, match="partitioner"):
        runner.run(MapReduceJob(name="bad", input_path="/input",
                                mapper_class=LocalMapper,
                                reducer_class=LocalReducer))

    # The sharded shuffle ships the partitioner to workers: a lambda
    # partitioner on an otherwise-picklable job fails the same way.
    factory = ALGORITHM_FACTORIES["Send-V"]
    hdfs2 = HDFS()
    hdfs2.create_file("/input", np.arange(1, 2001) % 200 + 1)
    runner2 = JobRunner(hdfs2, cluster=paper_cluster(split_size_bytes=1000),
                        executor=parallel_executor)
    from repro.algorithms.send_v import SendVMapper, SendVReducer
    from repro.algorithms.base import CONF_DOMAIN, CONF_K
    from repro.mapreduce.job import JobConfiguration
    with pytest.raises(ExecutorError):
        runner2.run(MapReduceJob(
            name="bad-partitioner", input_path="/input",
            mapper_class=SendVMapper, reducer_class=SendVReducer,
            partitioner=lambda key, r: key % r,
            configuration=JobConfiguration({CONF_DOMAIN: 256, CONF_K: 5}),
        ))

    # The executor survives both failures.
    assert len(parallel_executor.run_tasks([], slots=4)) == 0


def test_create_executor_names():
    assert create_executor("serial").name == "serial"
    parallel = create_executor("parallel", workers=2)
    assert parallel.name == "parallel" and parallel.max_workers == 2
    parallel.close()
    with pytest.raises(Exception):
        create_executor("threaded")


def test_shared_executor_is_cached():
    first = shared_executor("serial")
    assert shared_executor("serial") is first
    assert shared_executor("serial", None) is first
