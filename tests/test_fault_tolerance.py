"""Fault-tolerance suite (PR 8): chaos runs must be bit-identical to clean runs.

The hard invariant under test: a run with injected transient faults and
worker kills — retried through :class:`~repro.mapreduce.faults.RetryPolicy` —
produces exactly the same coefficients, counters, per-round outputs and
stored checksums as a fault-free run, across executors, data planes and the
cluster scheduler.  Faults change wall-clock time and the ``faults.*``
telemetry, never results.

Also covered: the fault injector's determinism, pool rebuild after worker
death, permanent-failure isolation in scheduled batches (one failing plan
must not take its siblings down), and the serving layer's quarantine /
intact-ancestor fallback.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.algorithms import SendCoef, SendV, TwoLevelSampling
from repro.errors import (
    InvalidParameterError,
    SynopsisIntegrityError,
    TaskPermanentError,
    TaskTransientError,
)
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.executor import (
    FunctionTaskSpec,
    ParallelExecutor,
    SerialExecutor,
)
from repro.mapreduce.faults import (
    KIND_TRANSIENT,
    KIND_WORKER_KILL,
    FaultInjector,
    RetryPolicy,
)
from repro.mapreduce.hdfs import HDFS
from repro.serving.server import QueryServer
from repro.serving.store import SynopsisStore
from repro.service import RuntimeProfile, SynopsisService
from repro.telemetry import get_telemetry

U = 64
K = 10
SEED = 7
EPSILON = 0.05

# rate=1.0 faults every eligible attempt (draws are in [0, 1), always below
# the rate), making the forced-failure tests fully deterministic.
ALWAYS = 1.0


def _cluster(dataset):
    return paper_cluster(split_size_bytes=max(4, dataset.size_bytes // 6))


def _run(algorithm_factory, dataset, executor, data_plane="batch"):
    hdfs = HDFS()
    dataset.to_hdfs(hdfs, "/data/input")
    profile = RuntimeProfile(cluster=_cluster(dataset), seed=SEED,
                             executor=executor, data_plane=data_plane)
    return algorithm_factory().run(hdfs, "/data/input", profile=profile)


def _assert_identical(clean, faulted):
    assert clean.histogram.coefficients == faulted.histogram.coefficients
    assert clean.counters.as_dict() == faulted.counters.as_dict()
    assert clean.num_rounds == faulted.num_rounds
    for clean_round, faulted_round in zip(clean.rounds, faulted.rounds):
        assert clean_round.output == faulted_round.output
        assert clean_round.shuffle_bytes == faulted_round.shuffle_bytes
    assert clean.communication_bytes == faulted.communication_bytes
    assert clean.simulated_time_s == faulted.simulated_time_s


class TestRetryPolicyAndInjector:
    def test_backoff_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(max_attempts=5, backoff_base_s=0.1,
                             backoff_multiplier=2.0, backoff_max_s=0.3)
        assert list(policy.schedule()) == [0.1, 0.2, 0.3, 0.3]
        assert policy.backoff_s(1) == 0.1
        assert policy.backoff_s(4) == 0.3

    def test_zero_base_means_no_sleeping(self):
        policy = RetryPolicy(max_attempts=3)
        assert list(policy.schedule()) == [0.0, 0.0]

    def test_policy_validation(self):
        with pytest.raises(InvalidParameterError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(InvalidParameterError):
            RetryPolicy(backoff_base_s=-1.0)

    def test_injector_validation(self):
        with pytest.raises(InvalidParameterError):
            FaultInjector(rate=1.5)
        with pytest.raises(InvalidParameterError):
            FaultInjector(rate=0.5, kill_fraction=2.0)
        with pytest.raises(InvalidParameterError):
            FaultInjector(rate=0.5, max_faults_per_task=-1)

    def test_draw_is_deterministic_per_task_and_attempt(self):
        injector = FaultInjector(rate=0.5, seed=9, max_faults_per_task=1)
        spec = FunctionTaskSpec(task_id=3, function=abs, payload=-1)
        first = injector.draw(spec, 1)
        assert all(injector.draw(spec, 1) == first for _ in range(10))
        # Attempts past the per-task budget never fault: retries terminate.
        assert injector.draw(spec, 2) is None

    def test_kill_fraction_splits_fault_kinds(self):
        all_kills = FaultInjector(rate=ALWAYS, seed=1, kill_fraction=1.0)
        no_kills = FaultInjector(rate=ALWAYS, seed=1, kill_fraction=0.0)
        spec = FunctionTaskSpec(task_id=0, function=abs, payload=-1)
        assert all_kills.draw(spec, 1) == KIND_WORKER_KILL
        assert no_kills.draw(spec, 1) == KIND_TRANSIENT

    def test_selector_limits_the_blast_radius(self):
        injector = FaultInjector(rate=ALWAYS, seed=2,
                                 selector=lambda spec: spec.task_id == 1)
        hit = FunctionTaskSpec(task_id=1, function=abs, payload=-1)
        miss = FunctionTaskSpec(task_id=2, function=abs, payload=-1)
        assert injector.draw(hit, 1) == KIND_TRANSIENT
        assert injector.draw(miss, 1) is None


class TestPermanentFailure:
    def test_permanent_error_reports_attempts_and_task_id(self):
        executor = SerialExecutor(
            retry_policy=RetryPolicy(max_attempts=2),
            fault_injector=FaultInjector(rate=ALWAYS, seed=4,
                                         max_faults_per_task=10),
        )
        spec = FunctionTaskSpec(task_id=5, function=abs, payload=-1)
        with pytest.raises(TaskPermanentError) as excinfo:
            executor.run_tasks([spec], slots=1)
        error = excinfo.value
        assert error.attempts == 2
        assert error.task_id == 5
        assert "after 2 attempt(s)" in str(error)
        assert "task 5" in str(error)
        # The executor survives the failure for subsequent clean work.
        clean = SerialExecutor()
        results = clean.run_tasks(
            [FunctionTaskSpec(task_id=0, function=abs, payload=-3)], slots=1)
        assert results[0].pairs[0][1] == 3

    def test_faults_within_budget_complete_with_retries_counted(self):
        executor = SerialExecutor(
            retry_policy=RetryPolicy(max_attempts=3),
            fault_injector=FaultInjector(rate=ALWAYS, seed=4,
                                         max_faults_per_task=1),
        )
        before = get_telemetry().metrics.counter_value(
            "repro_task_retries_total", phase="function", reason="transient")
        specs = [FunctionTaskSpec(task_id=i, function=abs, payload=-i)
                 for i in range(4)]
        results = executor.run_tasks(specs, slots=4)
        assert [result.pairs[0][1] for result in results] == [0, 1, 2, 3]
        after = get_telemetry().metrics.counter_value(
            "repro_task_retries_total", phase="function", reason="transient")
        assert after - before == 4  # every task faulted exactly once


class TestFaultEquivalence:
    """Injected transient faults never change results."""

    ALGORITHMS = {
        "send-v": lambda: SendV(U, K),
        "twolevel-s": lambda: TwoLevelSampling(U, K, epsilon=EPSILON),
    }

    @pytest.fixture(scope="class")
    def clean_results(self, tiny_dataset):
        return {name: _run(factory, tiny_dataset, SerialExecutor())
                for name, factory in self.ALGORITHMS.items()}

    @pytest.mark.parametrize("data_plane", ["batch", "records"])
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_serial_with_faults_matches_clean(self, name, data_plane,
                                              tiny_dataset, clean_results):
        executor = SerialExecutor(
            fault_injector=FaultInjector(rate=0.4, seed=13))
        before = get_telemetry().metrics.counter_value(
            "repro_task_retries_total", phase="map", reason="transient")
        faulted = _run(self.ALGORITHMS[name], tiny_dataset, executor,
                       data_plane)
        after = get_telemetry().metrics.counter_value(
            "repro_task_retries_total", phase="map", reason="transient")
        assert after > before, "no fault fired; the test proves nothing"
        _assert_identical(clean_results[name], faulted)

    @pytest.mark.parametrize("data_plane", ["batch", "records"])
    def test_parallel_with_faults_matches_clean(self, data_plane,
                                                tiny_dataset, clean_results):
        executor = ParallelExecutor(
            max_workers=2,
            fault_injector=FaultInjector(rate=0.4, seed=13))
        try:
            faulted = _run(self.ALGORITHMS["send-v"], tiny_dataset, executor,
                           data_plane)
        finally:
            executor.close()
        _assert_identical(clean_results["send-v"], faulted)

    def test_scheduled_batch_with_faults_matches_clean_builds(self,
                                                              tiny_dataset):
        algorithms = [SendV(U, K), SendCoef(U, K)]

        clean_service = SynopsisService(
            profile=RuntimeProfile(cluster=_cluster(tiny_dataset), seed=SEED))
        clean = [clean_service.build(algorithm, tiny_dataset)
                 for algorithm in algorithms]

        executor = SerialExecutor(
            fault_injector=FaultInjector(rate=0.4, seed=21))
        faulted_service = SynopsisService(
            profile=RuntimeProfile(cluster=_cluster(tiny_dataset), seed=SEED,
                                   executor=executor, concurrent_jobs=2))
        faulted = faulted_service.build_many(
            [(algorithm, tiny_dataset) for algorithm in algorithms])

        for clean_report, faulted_report in zip(clean, faulted):
            assert faulted_report.ok
            assert faulted_report.checksum_sha256 == clean_report.checksum_sha256
            assert (faulted_report.result.histogram.coefficients
                    == clean_report.result.histogram.coefficients)


class TestWorkerKillRecovery:
    def test_pool_rebuilds_after_injected_kill_and_results_match(self,
                                                                 tiny_dataset):
        clean = _run(lambda: SendV(U, K), tiny_dataset, SerialExecutor())
        executor = ParallelExecutor(
            max_workers=2,
            fault_injector=FaultInjector(rate=0.5, seed=3, kill_fraction=1.0))
        before = get_telemetry().metrics.counter_value(
            "repro_pool_rebuilds_total")
        try:
            faulted = _run(lambda: SendV(U, K), tiny_dataset, executor)
            after = get_telemetry().metrics.counter_value(
                "repro_pool_rebuilds_total")
            assert after > before, "no worker died; the test proves nothing"
            _assert_identical(clean, faulted)
            # The rebuilt pool keeps serving clean work.
            results = executor.run_tasks(
                [FunctionTaskSpec(task_id=0, function=abs, payload=-9)],
                slots=1)
            assert results[0].pairs[0][1] == 9
        finally:
            executor.close()


class TestJobFailureIsolation:
    def test_one_failed_job_leaves_siblings_bit_identical(self, tiny_dataset):
        # Target only Send-V's mapper: its retry budget exhausts and the job
        # fails permanently, while Send-Coef shares the scheduler batch.
        injector = FaultInjector(
            rate=ALWAYS, seed=5, max_faults_per_task=10,
            selector=lambda spec: "SendV" in getattr(
                spec, "mapper_class", type(None)).__name__)
        executor = SerialExecutor(
            retry_policy=RetryPolicy(max_attempts=2), fault_injector=injector)
        service = SynopsisService(
            profile=RuntimeProfile(cluster=_cluster(tiny_dataset), seed=SEED,
                                   executor=executor, concurrent_jobs=2))
        reports = service.build_many([
            (SendV(U, K), tiny_dataset, "victim"),
            (SendCoef(U, K), tiny_dataset, "sibling"),
        ])

        victim, sibling = reports
        assert not victim.ok
        assert victim.metadata is None and victim.result is None
        assert "permanently" in victim.error
        assert sibling.ok

        stats = victim.scheduler_stats
        assert stats is not None
        assert stats.failed_jobs == 1
        assert list(stats.job_errors) == [0]
        assert "permanently" in stats.job_errors[0]
        assert "failed-jobs=1" in stats.describe()

        # Nothing of the failed build was published; the sibling was.
        assert service.store.versions("victim") == []
        assert service.store.versions("sibling") == [1]

        # The sibling is bit-identical to a solo clean build.
        solo_service = SynopsisService(
            profile=RuntimeProfile(cluster=_cluster(tiny_dataset), seed=SEED))
        solo = solo_service.build(SendCoef(U, K), tiny_dataset, name="sibling")
        assert sibling.checksum_sha256 == solo.checksum_sha256
        assert (sibling.result.histogram.coefficients
                == solo.result.histogram.coefficients)

    def test_experiment_sweep_fails_loudly_on_permanent_failure(self,
                                                                tiny_dataset):
        from repro.errors import SchedulerError
        from repro.experiments.runner import run_algorithms

        injector = FaultInjector(
            rate=ALWAYS, seed=5, max_faults_per_task=10,
            selector=lambda spec: "SendV" in getattr(
                spec, "mapper_class", type(None)).__name__)
        executor = SerialExecutor(
            retry_policy=RetryPolicy(max_attempts=2), fault_injector=injector)
        profile = RuntimeProfile(cluster=_cluster(tiny_dataset), seed=SEED,
                                 executor=executor, concurrent_jobs=2)
        with pytest.raises(SchedulerError,
                           match="'Send-V' failed in the scheduled batch"):
            run_algorithms(tiny_dataset, [SendV(U, K), SendCoef(U, K)],
                           profile=profile)


class TestQuarantineFallback:
    @pytest.fixture()
    def corrupt_store_root(self, tmp_path, tiny_dataset):
        """A disk store with two versions of one synopsis, v2 corrupted."""
        root = str(tmp_path / "store")
        store = SynopsisStore(root)
        histogram = tiny_dataset.frequency_vector()
        from repro.core.histogram import WaveletHistogram

        synopsis = WaveletHistogram.from_frequency_vector(histogram, K)
        store.save("syn", synopsis)
        store.save("syn", synopsis)
        payload = glob.glob(os.path.join(root, "syn", "v00002",
                                         "synopsis.bin"))[0]
        with open(payload, "r+b") as handle:
            handle.seek(16)
            handle.write(b"\xde\xad\xbe\xef")
        return root

    def test_load_intact_falls_back_and_quarantines(self, corrupt_store_root):
        store = SynopsisStore(corrupt_store_root)
        with pytest.raises(SynopsisIntegrityError):
            store.load("syn", 2).histogram  # noqa: B018 - eager verification
        handle = store.load_intact("syn")
        assert handle.metadata.version == 1
        assert store.quarantined_versions("syn") == [2]

    def test_server_serves_intact_ancestor_with_degraded_flag(
            self, corrupt_store_root):
        intact = QueryServer(SynopsisStore(corrupt_store_root))
        v1 = intact.range_sums("syn", [1, 1], [U, 32], version=1)

        degraded = QueryServer(SynopsisStore(corrupt_store_root))
        answers = degraded.range_sums("syn", [1, 1], [U, 32])
        np.testing.assert_array_equal(answers, v1)

        stats = degraded.stats()
        assert stats["degraded"] == {
            "syn": {"requested_version": 2, "serving_version": 1},
        }
        # Selectivities pin the fallback version for the denominator too.
        selectivities = degraded.selectivities("syn", [1], [U])
        np.testing.assert_allclose(selectivities, [1.0])
        # refresh() clears the flag; the quarantine makes the next touch
        # degrade again without re-reading the corrupt payload.
        degraded.refresh()
        assert degraded.stats()["degraded"] == {}
        np.testing.assert_array_equal(degraded.range_sums("syn", [1], [U]),
                                      v1[:1])
        assert degraded.stats()["degraded"]["syn"]["serving_version"] == 1

    def test_every_version_corrupt_raises(self, tmp_path, tiny_dataset):
        from repro.core.histogram import WaveletHistogram

        root = str(tmp_path / "store")
        store = SynopsisStore(root)
        synopsis = WaveletHistogram.from_frequency_vector(
            tiny_dataset.frequency_vector(), K)
        store.save("syn", synopsis)
        payload = glob.glob(os.path.join(root, "syn", "v00001",
                                         "synopsis.bin"))[0]
        with open(payload, "r+b") as handle:
            handle.seek(16)
            handle.write(b"\xde\xad\xbe\xef")
        fresh = SynopsisStore(root)
        with pytest.raises(SynopsisIntegrityError):
            fresh.load_intact("syn")


class TestTransientErrorClassification:
    def test_transient_and_permanent_hierarchy(self):
        from repro.errors import ExecutorError, MapReduceError, ReproError

        assert issubclass(TaskTransientError, MapReduceError)
        assert issubclass(TaskPermanentError, ExecutorError)
        assert issubclass(TaskPermanentError, ReproError)

    def test_default_policy_retries_transients_not_logic_errors(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TaskTransientError("flap"))
        assert not policy.is_retryable(ValueError("bug"))
        assert not policy.is_retryable(TaskPermanentError("done"))
