"""Tests for the simulated HDFS (repro.mapreduce.hdfs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    FileAlreadyExistsError,
    FileNotFoundInHdfsError,
    InvalidParameterError,
)
from repro.mapreduce.hdfs import HDFS, HdfsFile, InputSplit


class TestHdfsFile:
    def test_size_and_record_count(self):
        hdfs_file = HdfsFile(path="/a", keys=np.arange(1, 101), record_size_bytes=8)
        assert hdfs_file.num_records == 100
        assert hdfs_file.size_bytes == 800

    def test_read_range(self):
        hdfs_file = HdfsFile(path="/a", keys=np.arange(1, 11))
        assert list(hdfs_file.read(2, 3)) == [3, 4, 5]

    def test_read_out_of_range_raises(self):
        hdfs_file = HdfsFile(path="/a", keys=np.arange(1, 11))
        with pytest.raises(InvalidParameterError):
            hdfs_file.read(8, 5)

    def test_rejects_records_smaller_than_key(self):
        with pytest.raises(InvalidParameterError):
            HdfsFile(path="/a", keys=np.array([1]), record_size_bytes=2)


class TestHdfsNamespace:
    def test_create_open_delete(self):
        hdfs = HDFS()
        hdfs.create_file("/data/x", [1, 2, 3])
        assert hdfs.exists("/data/x")
        assert hdfs.open("/data/x").num_records == 3
        hdfs.delete("/data/x")
        assert not hdfs.exists("/data/x")

    def test_create_duplicate_raises(self):
        hdfs = HDFS()
        hdfs.create_file("/data/x", [1])
        with pytest.raises(FileAlreadyExistsError):
            hdfs.create_file("/data/x", [2])

    def test_open_missing_raises(self):
        with pytest.raises(FileNotFoundInHdfsError):
            HDFS().open("/missing")

    def test_delete_missing_raises(self):
        with pytest.raises(FileNotFoundInHdfsError):
            HDFS().delete("/missing")

    def test_list_files_sorted(self):
        hdfs = HDFS()
        hdfs.create_file("/b", [1])
        hdfs.create_file("/a", [1])
        assert hdfs.list_files() == ["/a", "/b"]

    def test_len_and_iter(self):
        hdfs = HDFS()
        hdfs.create_file("/a", [1])
        hdfs.create_file("/b", [2])
        assert len(hdfs) == 2
        assert {f.path for f in hdfs} == {"/a", "/b"}

    def test_requires_at_least_one_datanode(self):
        with pytest.raises(InvalidParameterError):
            HDFS(datanodes=[])


class TestSplits:
    def test_split_sizes_and_coverage(self):
        hdfs = HDFS(datanodes=["n0", "n1", "n2"])
        hdfs.create_file("/data", np.arange(1, 1001), record_size_bytes=4)
        splits = hdfs.splits("/data", split_size_bytes=1200)  # 300 records per split
        assert len(splits) == 4
        assert sum(split.length for split in splits) == 1000
        assert [split.start for split in splits] == [0, 300, 600, 900]
        assert splits[-1].length == 100

    def test_split_ids_are_sequential(self):
        hdfs = HDFS()
        hdfs.create_file("/data", np.arange(1, 101))
        splits = hdfs.splits("/data", split_size_bytes=100)
        assert [split.split_id for split in splits] == list(range(len(splits)))

    def test_round_robin_host_assignment(self):
        hdfs = HDFS(datanodes=["n0", "n1"])
        hdfs.create_file("/data", np.arange(1, 101))
        splits = hdfs.splits("/data", split_size_bytes=100)
        assert [split.host for split in splits[:4]] == ["n0", "n1", "n0", "n1"]

    def test_single_split_when_split_size_exceeds_file(self):
        hdfs = HDFS()
        hdfs.create_file("/data", np.arange(1, 11))
        splits = hdfs.splits("/data", split_size_bytes=10_000)
        assert len(splits) == 1
        assert splits[0].length == 10

    def test_invalid_split_size(self):
        hdfs = HDFS()
        hdfs.create_file("/data", [1])
        with pytest.raises(InvalidParameterError):
            hdfs.splits("/data", split_size_bytes=0)

    def test_split_end_property(self):
        split = InputSplit(split_id=0, path="/d", start=10, length=5, host="n", size_bytes=20)
        assert split.end == 15

    def test_split_bytes_reflect_record_size(self):
        hdfs = HDFS()
        hdfs.create_file("/data", np.arange(1, 101), record_size_bytes=100)
        splits = hdfs.splits("/data", split_size_bytes=2500)  # 25 records per split
        assert splits[0].size_bytes == 2500
        assert splits[0].length == 25
