"""Tests for the shared algorithm driver and result type (repro.algorithms.base)."""

from __future__ import annotations

import pytest

from repro.algorithms import SendV, TwoLevelSampling
from repro.algorithms.base import AlgorithmResult, HistogramAlgorithm
from repro.core.histogram import WaveletHistogram
from repro.cost.model import CostParameters
from repro.errors import InvalidParameterError
from repro.mapreduce.counters import CounterNames


class TestHistogramAlgorithmValidation:
    def test_rejects_non_positive_k(self):
        with pytest.raises(InvalidParameterError):
            SendV(1024, 0)

    def test_log2_domain_helper(self):
        assert HistogramAlgorithm.log2_domain(1024) == 10
        with pytest.raises(InvalidParameterError):
            HistogramAlgorithm.log2_domain(1000)

    def test_algorithm_exposes_name_u_k(self):
        algorithm = TwoLevelSampling(512, 7, epsilon=0.05)
        assert algorithm.name == "TwoLevel-S"
        assert algorithm.u == 512 and algorithm.k == 7


class TestRunDriver:
    def test_default_cluster_is_papers(self, hdfs_with_small_dataset, small_dataset):
        result = SendV(small_dataset.u, 5).run(hdfs_with_small_dataset, "/data/input")
        assert result.algorithm == "Send-V"
        assert result.num_rounds == 1
        # The paper's default split size (256 MB) makes this tiny file one split.
        assert result.rounds[0].num_mappers == 1

    def test_custom_cost_parameters_change_time_but_not_communication(
            self, hdfs_with_small_dataset, small_dataset, small_cluster):
        baseline = SendV(small_dataset.u, 5).run(
            hdfs_with_small_dataset, "/data/input", cluster=small_cluster
        )
        expensive = SendV(small_dataset.u, 5).run(
            hdfs_with_small_dataset, "/data/input", cluster=small_cluster,
            cost_parameters=CostParameters(seconds_per_hashmap_update=1e-3),
        )
        assert expensive.simulated_time_s > baseline.simulated_time_s
        assert expensive.communication_bytes == baseline.communication_bytes

    def test_result_counters_match_round_counters(self, hdfs_with_small_dataset,
                                                  small_dataset, small_cluster):
        result = SendV(small_dataset.u, 5).run(hdfs_with_small_dataset, "/data/input",
                                               cluster=small_cluster)
        per_round = sum(r.counters.get(CounterNames.SHUFFLE_BYTES) for r in result.rounds)
        assert result.counters.get(CounterNames.SHUFFLE_BYTES) == per_round

    def test_result_communication_matches_rounds(self, hdfs_with_small_dataset,
                                                 small_dataset, small_cluster):
        result = SendV(small_dataset.u, 5).run(hdfs_with_small_dataset, "/data/input",
                                               cluster=small_cluster)
        assert result.communication_bytes == pytest.approx(
            sum(r.communication_bytes for r in result.rounds)
        )


class TestAlgorithmResult:
    def test_sse_delegates_to_histogram(self, small_reference, small_dataset):
        histogram = WaveletHistogram.from_frequency_vector(small_reference, 5)
        result = AlgorithmResult(algorithm="x", histogram=histogram)
        assert result.sse(small_reference) == pytest.approx(histogram.sse(small_reference))
        assert result.num_rounds == 0
