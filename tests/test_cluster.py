"""Tests for the cluster description (repro.mapreduce.cluster)."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.mapreduce.cluster import MEGABYTE, ClusterSpec, MachineSpec, paper_cluster


class TestClusterSpec:
    def test_paper_cluster_matches_section_5(self):
        cluster = paper_cluster()
        assert cluster.num_workers == 16
        assert cluster.network_mbps == 100.0
        assert cluster.available_bandwidth_fraction == 0.5
        assert cluster.split_size_bytes == 256 * MEGABYTE
        ram_profile = sorted(machine.ram_gb for machine in cluster.machines)
        assert ram_profile.count(2.0) == 10
        assert ram_profile.count(4.0) == 4
        assert ram_profile.count(6.0) == 2

    def test_effective_bandwidth(self):
        cluster = paper_cluster(available_bandwidth_fraction=0.5)
        assert cluster.effective_bandwidth_bytes_per_s == pytest.approx(100e6 * 0.5 / 8)

    def test_total_map_slots(self):
        cluster = paper_cluster()
        assert cluster.total_map_slots == 16

    def test_average_disk_and_cpu(self):
        machines = [MachineSpec("a", disk_mb_per_s=50, cpu_ghz=1.0),
                    MachineSpec("b", disk_mb_per_s=150, cpu_ghz=3.0)]
        cluster = ClusterSpec(machines=machines)
        assert cluster.average_disk_bytes_per_s == pytest.approx(100 * MEGABYTE)
        assert cluster.average_cpu_ghz == pytest.approx(2.0)

    def test_with_bandwidth_fraction_returns_copy(self):
        cluster = paper_cluster()
        faster = cluster.with_bandwidth_fraction(1.0)
        assert faster.available_bandwidth_fraction == 1.0
        assert cluster.available_bandwidth_fraction == 0.5
        assert faster.num_workers == cluster.num_workers

    def test_with_split_size_returns_copy(self):
        cluster = paper_cluster()
        resized = cluster.with_split_size(64 * MEGABYTE)
        assert resized.split_size_bytes == 64 * MEGABYTE
        assert cluster.split_size_bytes == 256 * MEGABYTE

    def test_validation_errors(self):
        with pytest.raises(InvalidParameterError):
            ClusterSpec(machines=[])
        with pytest.raises(InvalidParameterError):
            ClusterSpec(machines=[MachineSpec("a")], available_bandwidth_fraction=0.0)
        with pytest.raises(InvalidParameterError):
            ClusterSpec(machines=[MachineSpec("a")], split_size_bytes=0)
        with pytest.raises(InvalidParameterError):
            ClusterSpec(machines=[MachineSpec("a")], network_mbps=-1)
