"""Streaming ingest ↔ batch build equivalence, plus the PR's serving-layer
and scheduler regression tests.

The load-bearing invariant of ``repro.streaming``::

    ingest(updates) ∘ maintain  ≡  batch-build(base ∪ updates)

Because the maintainer's durable state is the exact count-space frequency
vector and every publish re-runs the same ``sparse_haar_transform`` +
``top_k_coefficients`` pipeline a batch build runs, the streamed synopsis is
not merely *close* to the batch one — the stored payloads are byte-identical
and the sha256 checksums match exactly.  The hypothesis suites below assert
that for insert-only, insert+delete, and sliding-window streams; fixed tests
pin the same equality against a real Send-V MapReduce build on both
executors, and the crash-recovery test restarts the maintainer mid-stream
and verifies no version is skipped or double-applied.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import SendV
from repro.core import (
    WaveletHistogram,
    merge_coefficients,
    sparse_haar_transform,
    top_k_coefficients,
)
from repro.data.dataset import Dataset
from repro.errors import InvalidParameterError, StreamingError
from repro.mapreduce import HDFS, ClusterScheduler, JobPlan, JobRunner, MapReduceJob, PlanStage
from repro.mapreduce.api import Mapper, Reducer
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.executor import ParallelExecutor, SerialExecutor
from repro.mapreduce.state import StateStore
from repro.serving.engine import BatchQueryEngine, normalize_selectivities
from repro.serving.server import QueryServer
from repro.serving.store import SynopsisStore
from repro.serving.workload import UpdateStreamGenerator
from repro.service import RuntimeProfile, SynopsisService
from repro.streaming import (
    PartialSynopsis,
    SlidingWindowMaintainer,
    StreamIngestor,
    SynopsisMaintainer,
)

U = 128
K = 16


# ----------------------------------------------------------------- helpers
def _batch_publish(store: SynopsisStore, name: str, keys: np.ndarray,
                   u: int, k: int):
    """A from-scratch batch build of ``keys``: count, transform, threshold."""
    counts = np.bincount(np.asarray(keys, dtype=np.int64), minlength=u + 1)
    sparse = {int(key): float(c)
              for key, c in enumerate(counts) if key >= 1 and c}
    coefficients = top_k_coefficients(sparse_haar_transform(sparse, u), k)
    histogram = WaveletHistogram.from_coefficients(coefficients, u, k=k)
    return store.save(name, histogram, algorithm="batch")


def _stream_all(store: SynopsisStore, name: str, batches, u: int, k: int,
                cadence: int = 1) -> SynopsisMaintainer:
    maintainer = SynopsisMaintainer(store, name, u=u, k=k, cadence=cadence)
    ingestor = StreamIngestor(u, partition=name)
    for batch in batches:
        maintainer.ingest(ingestor.batch(batch.inserts, batch.deletes),
                          sequence=batch.sequence)
    maintainer.maintain()
    return maintainer


def _assert_serving_matches_batch(store, name, generator, batches, u, k):
    reference_store = SynopsisStore.in_memory()
    expected = _batch_publish(reference_store, "reference",
                              generator.net_keys(batches), u, k)
    actual = store.load(name)
    assert actual.metadata.checksum_sha256 == expected.checksum_sha256
    assert (actual.histogram.coefficients
            == reference_store.load("reference").histogram.coefficients)


def _assert_provenance_chain(store, name):
    """Versions are contiguous from 1 and each delta names its predecessor."""
    versions = store.versions(name)
    assert versions == list(range(1, len(versions) + 1))
    applied = []
    for version in versions:
        metadata = store.load(name, version).metadata
        assert metadata.parent_version == (version - 1 if version > 1 else None)
        applied.append(metadata.build["applied_batches"])
    assert applied == sorted(set(applied)), "a publish double-applied batches"


# ------------------------------------------------- streamed == batch build
class TestStreamingMatchesBatchBuild:
    @given(seed=st.integers(0, 2**16),
           num_batches=st.integers(1, 5),
           batch_size=st.integers(8, 120),
           cadence=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_insert_only(self, seed, num_batches, batch_size, cadence):
        generator = UpdateStreamGenerator(u=U, seed=seed)
        batches = generator.batches(batch_size, num_batches)
        store = SynopsisStore.in_memory()
        maintainer = _stream_all(store, "stream", batches, U, K, cadence)
        assert maintainer.applied_batches == num_batches
        _assert_serving_matches_batch(store, "stream", generator, batches, U, K)
        _assert_provenance_chain(store, "stream")

    @given(seed=st.integers(0, 2**16),
           num_batches=st.integers(1, 5),
           batch_size=st.integers(8, 120),
           delete_fraction=st.sampled_from([0.1, 0.25, 0.4]),
           cadence=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_insert_and_delete(self, seed, num_batches, batch_size,
                               delete_fraction, cadence):
        generator = UpdateStreamGenerator(u=U, seed=seed,
                                          delete_fraction=delete_fraction)
        batches = generator.batches(batch_size, num_batches)
        store = SynopsisStore.in_memory()
        _stream_all(store, "stream", batches, U, K, cadence)
        _assert_serving_matches_batch(store, "stream", generator, batches, U, K)
        _assert_provenance_chain(store, "stream")

    @pytest.mark.parametrize("executor_name", ["serial", "parallel"])
    def test_checksum_matches_real_send_v_build(self, executor_name):
        """The acceptance gate: a streamed synopsis is byte-identical to a
        Send-V MapReduce build of the same net multiset, on both executors."""
        executor = (ParallelExecutor(max_workers=2)
                    if executor_name == "parallel" else SerialExecutor())
        try:
            profile = RuntimeProfile(seed=7, executor=executor)
            generator = UpdateStreamGenerator(u=U, seed=13, delete_fraction=0.3)
            batches = generator.batches(400, 4)

            service = SynopsisService(profile=profile)
            for batch in batches:
                service.ingest("hits", batch.inserts, batch.deletes,
                               u=U, k=K, cadence=2)
            service.maintain("hits")

            dataset = Dataset(name="net", keys=generator.net_keys(batches), u=U)
            report = service.build(SendV(U, K), dataset, name="batch-reference")

            streamed = service.store.load("hits")
            assert (streamed.metadata.checksum_sha256
                    == report.metadata.checksum_sha256)
            assert (streamed.histogram.coefficients
                    == service.store.load("batch-reference").histogram.coefficients)
        finally:
            executor.close()

    def test_queries_see_published_deltas(self):
        service = SynopsisService()
        generator = UpdateStreamGenerator(u=U, seed=3)
        batches = generator.batches(200, 2)
        for batch in batches:
            service.ingest("live", batch.inserts, u=U, k=K)
        answers = service.query(["live"], [1], [U])
        assert answers["live"][0] == pytest.approx(
            float(generator.net_keys(batches).size))


# ------------------------------------------------------- sliding windows
class TestSlidingWindow:
    @given(seed=st.integers(0, 2**16),
           num_batches=st.integers(1, 6),
           batch_size=st.integers(8, 80),
           window=st.integers(1, 3))
    @settings(max_examples=25, deadline=None)
    def test_window_equals_batch_build_of_live_epochs(
            self, seed, num_batches, batch_size, window):
        generator = UpdateStreamGenerator(u=U, seed=seed)
        batches = generator.batches(batch_size, num_batches)
        store = SynopsisStore.in_memory()
        maintainer = SlidingWindowMaintainer(store, "window", u=U, k=K,
                                             window=window)
        ingestor = StreamIngestor(U)
        for batch in batches:
            maintainer.advance(ingestor.batch(batch.inserts, batch.deletes),
                               sequence=batch.sequence)
        # One publish per epoch; the synopsis covers only the last W epochs.
        assert store.versions("window") == list(range(1, num_batches + 1))
        live = batches[-window:]
        reference_store = SynopsisStore.in_memory()
        expected = _batch_publish(
            reference_store, "reference",
            np.concatenate([batch.inserts for batch in live]), U, K)
        actual = store.load("window")
        assert actual.metadata.checksum_sha256 == expected.checksum_sha256
        assert actual.metadata.build["window_batches"] == len(live)

    def test_window_with_deletes_matches_direct_counts(self):
        """Expiry subtracts the evicted epoch exactly, deletions included."""
        u, k, window = 64, 12, 2
        rng = np.random.default_rng(5)
        batches = []
        for sequence in range(1, 5):
            inserts = rng.integers(1, u + 1, size=50).astype(np.int64)
            deletes = np.sort(rng.choice(inserts, size=10, replace=False))
            batches.append((sequence, inserts, deletes))
        store = SynopsisStore.in_memory()
        maintainer = SlidingWindowMaintainer(store, "window", u=u, k=k,
                                             window=window)
        for sequence, inserts, deletes in batches:
            maintainer.advance(PartialSynopsis.from_updates(
                u, inserts=inserts, deletes=deletes), sequence=sequence)
        counts = np.zeros(u + 1, dtype=np.int64)
        for _, inserts, deletes in batches[-window:]:
            np.add.at(counts, inserts, 1)
            np.subtract.at(counts, deletes, 1)
        sparse = {int(key): float(c) for key, c in enumerate(counts)
                  if key >= 1 and c}
        expected = top_k_coefficients(sparse_haar_transform(sparse, u), k)
        assert store.load("window").histogram.coefficients == expected

    def test_reopen_resumes_from_dense_redelivery(self):
        generator = UpdateStreamGenerator(u=U, seed=9)
        batches = generator.batches(40, 5)
        store = SynopsisStore.in_memory()
        first = SlidingWindowMaintainer(store, "window", u=U, k=K, window=3)
        for batch in batches:
            first.advance(PartialSynopsis.from_updates(U, inserts=batch.inserts),
                          sequence=batch.sequence)
        final_checksum = store.load("window").metadata.checksum_sha256

        reopened = SlidingWindowMaintainer(store, "window", window=3)
        assert reopened.resume_from == 3  # applied=5, window=3
        for batch in batches[reopened.resume_from - 1:]:
            metadata = reopened.advance(
                PartialSynopsis.from_updates(U, inserts=batch.inserts),
                sequence=batch.sequence)
            assert metadata is None  # re-delivery rebuilds the ring silently
        assert store.versions("window") == [1, 2, 3, 4, 5]
        assert store.load("window").metadata.checksum_sha256 == final_checksum

        with pytest.raises(StreamingError):
            SlidingWindowMaintainer(store, "window", window=4)


# ------------------------------------------------ crash / exactly-once
class TestCrashRecovery:
    def test_crash_between_publishes_recovers_exactly_once(self):
        """Kill the maintainer after the state checkpoint but before the
        serving publish; a restarted maintainer must neither skip nor
        double-apply a version under at-least-once redelivery."""
        store = SynopsisStore.in_memory()
        generator = UpdateStreamGenerator(u=U, seed=11, delete_fraction=0.2)
        batches = generator.batches(60, 6)
        maintainer = SynopsisMaintainer(store, "hits", u=U, k=K, cadence=2)
        ingestor = StreamIngestor(U)
        for batch in batches[:4]:
            maintainer.ingest(ingestor.batch(batch.inserts, batch.deletes),
                              sequence=batch.sequence)
        assert store.versions("hits") == [1, 2]

        def crash(*args, **kwargs):
            raise RuntimeError("injected crash before serving publish")

        store.save_delta = crash  # instance attribute shadows the method
        maintainer.ingest(ingestor.batch(batches[4].inserts,
                                         batches[4].deletes), sequence=5)
        with pytest.raises(RuntimeError, match="injected crash"):
            maintainer.ingest(ingestor.batch(batches[5].inserts,
                                             batches[5].deletes), sequence=6)
        del store.save_delta
        # The durable state has all 6 batches; serving stopped at version 2.
        assert store.versions("hits") == [1, 2]

        # Restart: recover from the checkpoint, redeliver the whole stream.
        recovered = SynopsisMaintainer(store, "hits", k=K)
        assert recovered.applied_batches == 6
        assert recovered.u == U
        for batch in batches:
            assert recovered.ingest(
                ingestor.batch(batch.inserts, batch.deletes),
                sequence=batch.sequence) is None
        # maintain() completes the lagging serving publish exactly once.
        metadata = recovered.maintain()
        assert metadata is not None
        assert metadata.version == 3
        assert metadata.parent_version == 2
        assert metadata.build["applied_batches"] == 6
        _assert_provenance_chain(store, "hits")
        _assert_serving_matches_batch(store, "hits", generator, batches, U, K)
        assert recovered.maintain() is None

    def test_sequence_gap_rejected_duplicate_ignored(self):
        store = SynopsisStore.in_memory()
        maintainer = SynopsisMaintainer(store, "seq", u=U, k=K, cadence=10)
        partial = PartialSynopsis.from_updates(
            U, inserts=np.array([1, 2, 3], dtype=np.int64))
        assert maintainer.ingest(partial, sequence=1) is None
        with pytest.raises(StreamingError):
            maintainer.ingest(partial, sequence=3)
        before = maintainer.pending_batches
        assert maintainer.ingest(partial, sequence=1) is None  # duplicate
        assert maintainer.pending_batches == before
        assert maintainer.next_sequence == 2

    def test_serving_without_state_checkpoint_is_refused(self):
        store = SynopsisStore.in_memory()
        _batch_publish(store, "orphan", np.array([1, 2, 3]), U, K)
        with pytest.raises(StreamingError):
            SynopsisMaintainer(store, "orphan", u=U, k=K)

    def test_transient_write_fault_between_checkpoint_and_publish_is_retried(self):
        """An I/O flap on the serving publish — after the state checkpoint
        already succeeded — is retried in place: versions stay exactly-once
        with no reconciliation pass, and the stream remains byte-identical
        to the batch build (PR 8 write-retry policy)."""
        store = SynopsisStore.in_memory()
        generator = UpdateStreamGenerator(u=U, seed=19, delete_fraction=0.1)
        batches = generator.batches(50, 4)
        maintainer = SynopsisMaintainer(store, "flaky", u=U, k=K, cadence=2)
        ingestor = StreamIngestor(U)

        original = store.save_delta
        fails = {"remaining": 2}

        def flaky_save_delta(*args, **kwargs):
            if fails["remaining"] > 0:
                fails["remaining"] -= 1
                raise OSError("injected transient store-write fault")
            return original(*args, **kwargs)

        store.save_delta = flaky_save_delta  # instance attr shadows the method
        for batch in batches:
            maintainer.ingest(ingestor.batch(batch.inserts, batch.deletes),
                              sequence=batch.sequence)
        del store.save_delta

        assert fails["remaining"] == 0, "the injected fault never fired"
        assert store.versions("flaky") == [1, 2]
        _assert_provenance_chain(store, "flaky")
        _assert_serving_matches_batch(store, "flaky", generator, batches, U, K)

    def test_retry_then_duplicate_redelivery_does_not_double_apply(self):
        """At-least-once upstream delivery after a retried publish: replaying
        already-applied sequence numbers must change nothing."""
        store = SynopsisStore.in_memory()
        generator = UpdateStreamGenerator(u=U, seed=23, delete_fraction=0.2)
        batches = generator.batches(40, 4)
        maintainer = SynopsisMaintainer(store, "redeliver", u=U, k=K, cadence=1)
        ingestor = StreamIngestor(U)

        original = store.save_delta
        fails = {"remaining": 1}

        def flaky_save_delta(*args, **kwargs):
            if fails["remaining"] > 0:
                fails["remaining"] -= 1
                raise OSError("injected transient store-write fault")
            return original(*args, **kwargs)

        store.save_delta = flaky_save_delta
        for batch in batches:
            assert maintainer.ingest(
                ingestor.batch(batch.inserts, batch.deletes),
                sequence=batch.sequence) is not None
        del store.save_delta
        assert fails["remaining"] == 0
        versions_before = store.versions("redeliver")
        checksum_before = store.load("redeliver").metadata.checksum_sha256

        # Redeliver every batch (duplicates of applied sequences): dropped.
        for batch in batches:
            assert maintainer.ingest(
                ingestor.batch(batch.inserts, batch.deletes),
                sequence=batch.sequence) is None
        assert maintainer.applied_batches == len(batches)
        assert store.versions("redeliver") == versions_before
        assert store.load("redeliver").metadata.checksum_sha256 == checksum_before
        _assert_serving_matches_batch(store, "redeliver", generator, batches,
                                      U, K)

    def test_exhausted_write_retries_propagate_then_reconcile(self):
        """A persistent write failure exhausts the retry budget and surfaces;
        the durable state is already checkpointed, so the PR-6 reconciliation
        path completes the lagging publish exactly once afterwards."""
        store = SynopsisStore.in_memory()
        generator = UpdateStreamGenerator(u=U, seed=29)
        batches = generator.batches(30, 2)
        maintainer = SynopsisMaintainer(store, "down", u=U, k=K, cadence=1)
        ingestor = StreamIngestor(U)
        maintainer.ingest(ingestor.batch(batches[0].inserts,
                                         batches[0].deletes), sequence=1)
        assert store.versions("down") == [1]

        def broken_save_delta(*args, **kwargs):
            raise OSError("store down for good")

        store.save_delta = broken_save_delta
        with pytest.raises(OSError, match="store down"):
            maintainer.ingest(ingestor.batch(batches[1].inserts,
                                             batches[1].deletes), sequence=2)
        del store.save_delta
        # State has both batches; serving stopped at v1 — maintain() catches up.
        assert store.versions("down") == [1]
        metadata = maintainer.maintain()
        assert metadata is not None
        assert metadata.version == 2
        assert metadata.parent_version == 1
        assert metadata.build["applied_batches"] == 2
        assert maintainer.maintain() is None
        _assert_provenance_chain(store, "down")
        _assert_serving_matches_batch(store, "down", generator, batches, U, K)


# ------------------------------------------------------ partial algebra
def _key_arrays():
    return st.lists(st.integers(1, 64), max_size=40).map(
        lambda keys: np.asarray(keys, dtype=np.int64))


class TestPartialSynopsisAlgebra:
    @given(a=_key_arrays(), b=_key_arrays(), c=_key_arrays())
    @settings(max_examples=100, deadline=None)
    def test_merge_is_commutative_and_associative(self, a, b, c):
        pa = PartialSynopsis.from_updates(64, inserts=a)
        pb = PartialSynopsis.from_updates(64, inserts=b, deletes=c[:len(c) // 2])
        pc = PartialSynopsis.from_updates(64, inserts=c)
        assert pa.merge(pb).counts == pb.merge(pa).counts
        assert (pa.merge(pb).merge(pc).counts
                == pa.merge(pb.merge(pc)).counts)

    @given(a=_key_arrays(), b=_key_arrays())
    @settings(max_examples=100, deadline=None)
    def test_transform_is_linear_over_merge(self, a, b):
        """coefficients(a ⊕ b) == coefficients(a) + coefficients(b) to 1e-9 —
        the property that makes per-partition partials mergeable at all.
        (Only to 1e-9: Haar normalization carries √2 factors, so summing
        transformed coefficients rounds differently from transforming summed
        counts — which is exactly why the maintainer's durable state lives in
        count space, where merging *is* bit-exact integer addition.)"""
        pa = PartialSynopsis.from_updates(64, inserts=a)
        pb = PartialSynopsis.from_updates(64, inserts=b)
        merged = pa.merge(pb).coefficients()
        summed = merge_coefficients(pa.coefficients(), pb.coefficients())
        for index in set(merged) | set(summed):
            assert merged.get(index, 0.0) == pytest.approx(
                summed.get(index, 0.0), abs=1e-9)

    @given(a=_key_arrays())
    @settings(max_examples=100, deadline=None)
    def test_negation_cancels_exactly(self, a):
        partial = PartialSynopsis.from_updates(64, inserts=a)
        assert partial.merge(partial.negated()).is_empty

    @pytest.mark.parametrize("executor_name", ["serial", "parallel"])
    def test_sharded_ingest_equals_inline(self, executor_name):
        executor = (ParallelExecutor(max_workers=2)
                    if executor_name == "parallel" else SerialExecutor())
        try:
            rng = np.random.default_rng(17)
            inserts = rng.integers(1, U + 1, size=1000).astype(np.int64)
            deletes = np.sort(rng.choice(inserts, size=200, replace=False))
            inline = StreamIngestor(U).batch(inserts, deletes)
            sharded = StreamIngestor(U, executor=executor,
                                     shard_size=64).batch(inserts, deletes)
            assert sharded.counts == inline.counts
            assert sharded.insertions == inline.insertions
            assert sharded.deletions == inline.deletions
            assert sharded.batches == inline.batches == 1
        finally:
            executor.close()


# --------------------------------------------- serving-layer regressions
class _RacingServer(QueryServer):
    """Publishes a new version in the middle of a ``selectivities`` call —
    between the engine resolve and the range-sum read."""

    def range_sums(self, name, los, his, *, version=None):
        if not getattr(self, "_raced", False):
            self._raced = True
            tripled = WaveletHistogram.from_dense(
                np.full(64, 6.0), k=64)
            self.store.save(name, tripled, algorithm="exact")
            self.refresh()
        return super().range_sums(name, los, his, version=version)


class TestServingRegressions:
    def test_selectivities_pin_one_version_across_the_call(self):
        """Regression: ``selectivities`` used to resolve the synopsis twice
        (once for the engine total, once inside ``range_sums``), so a publish
        between the two mixed v2 sums with a v1 denominator."""
        store = SynopsisStore.in_memory()
        store.save("web", WaveletHistogram.from_dense(np.full(64, 2.0), k=64),
                   algorithm="exact")
        server = _RacingServer(store)
        fractions = server.selectivities("web", [1], [64])
        # Both numerator and denominator must come from version 1: exactly 1.
        assert fractions[0] == pytest.approx(1.0, abs=1e-12)
        # The race really happened and v2 is live for fresh resolves.
        assert store.latest_version("web") == 2

    @pytest.mark.parametrize(
        "total", [0.0, -1.0, float("nan"), float("inf"), float("-inf")])
    def test_normalize_selectivities_degenerate_totals(self, total):
        sums = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(normalize_selectivities(sums, total),
                              np.zeros(3))

    def test_normalize_selectivities_positive_total(self):
        sums = np.array([1.0, 3.0])
        assert np.allclose(normalize_selectivities(sums, 4.0), [0.25, 0.75])

    def test_from_arrays_rejects_duplicate_indices(self):
        with pytest.raises(InvalidParameterError, match="duplicate"):
            BatchQueryEngine.from_arrays(64, [1, 2, 2], [0.5, 1.0, 2.0])
        engine = BatchQueryEngine.from_arrays(64, [1, 2], [0.5, 1.0])
        assert engine.estimated_total() == pytest.approx(
            WaveletHistogram.from_coefficients({1: 0.5, 2: 1.0}, 64)
            .range_sum_scalar(1, 64))


# ------------------------------------------------- scheduler regression
class _CountingMapper(Mapper):
    """Emits nothing — the stage is pure side-effect counting."""

    def map(self, record, context):
        context.counters.increment("test.map_only.records")


def _map_only_job(input_path):
    job = MapReduceJob(name="scan", input_path=input_path,
                       mapper_class=_CountingMapper, reducer_class=Reducer)
    # A plan rewrite can legally drop the reduce phase after construction;
    # zero reducers means zero reduce specs at the map barrier.
    job.num_reducers = 0
    return job


class TestSchedulerMapOnlyStage:
    def test_map_only_stage_does_not_stall(self):
        """Regression: with zero reduce specs no reduce-task completion ever
        crossed the reduce barrier, so the scheduler raised
        ``SchedulerError: scheduler stalled with unfinished plans``."""
        from repro.data import ZipfDatasetGenerator

        dataset = ZipfDatasetGenerator(u=64, alpha=1.1, seed=7).generate(
            500, name="scan-input")
        cluster = paper_cluster(split_size_bytes=max(4, dataset.size_bytes // 4))
        input_path = "/data/input"

        hdfs = HDFS()
        dataset.to_hdfs(hdfs, input_path)
        runner = JobRunner(hdfs, cluster=cluster, state_store=StateStore(),
                           seed=7, executor=SerialExecutor())
        stage = PlanStage(name="scan",
                          build=lambda ctx: _map_only_job(ctx.input_path))
        plan = JobPlan(name="map-only", input_path=input_path, stages=(stage,),
                       finish=lambda ctx: ctx.result("scan"))
        scheduler = ClusterScheduler.for_cluster(cluster, SerialExecutor())
        outcome = scheduler.run([(plan, runner)])[0]

        hdfs2 = HDFS()
        dataset.to_hdfs(hdfs2, input_path)
        sequential = JobRunner(hdfs2, cluster=cluster, state_store=StateStore(),
                               seed=7, executor=SerialExecutor()).run(
            _map_only_job(input_path))

        assert outcome.output == sequential.output == []
        assert (outcome.counters.get("test.map_only.records")
                == sequential.counters.get("test.map_only.records")
                == dataset.n)
        assert scheduler.last_stats.rounds == 1
        assert scheduler.last_stats.reduce_tasks == 0
