"""Telemetry must never change results: bit-identity with tracing enabled.

The telemetry layer's hard invariant is that it never touches task RNGs,
payload bytes or merge order.  These tests run the same build / fan-out /
streaming work with telemetry off and with a fully enabled bundle (tracer
on), across executors and data planes, and require bit-identical outcomes —
the same guarantee the executor/scheduler/streaming equivalence suites make
for their own execution knobs.  They also pin the metric-delta barrier
discipline: per-task deltas replayed in task order produce executor-
independent registry totals.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.registry import make_algorithm
from repro.cli import main
from repro.mapreduce.hdfs import HDFS
from repro.service import RuntimeProfile, SynopsisService
from repro.serving.store import SynopsisStore
from repro.serving.workload import WorkloadGenerator
from repro.telemetry import Telemetry, Tracer, get_telemetry, set_telemetry

SEED = 11
K = 16
INPUT = "/data/input"


@pytest.fixture()
def global_telemetry_guard():
    """Restore the process-global telemetry bundle after the test."""
    original = get_telemetry()
    yield
    set_telemetry(original)


def _build(dataset, profile):
    """One algorithm build from scratch: fresh HDFS, fresh algorithm."""
    algorithm = make_algorithm("send-v", u=dataset.u, k=K)
    hdfs = HDFS()
    dataset.to_hdfs(hdfs, INPUT)
    return algorithm.run(hdfs, INPUT, profile=profile)


def _fingerprint(result):
    return (
        dict(result.histogram.coefficients),
        result.communication_bytes,
        result.simulated_time_s,
        result.num_rounds,
        result.counters.as_dict(),
    )


@pytest.mark.parametrize("executor", ["serial", "parallel"])
@pytest.mark.parametrize("data_plane", ["batch", "records"])
def test_build_is_bit_identical_with_telemetry_enabled(
    small_dataset, global_telemetry_guard, executor, data_plane
):
    profile = RuntimeProfile(seed=SEED, executor=executor,
                             data_plane=data_plane)
    set_telemetry(Telemetry())  # telemetry off (tracer disabled)
    baseline = _fingerprint(_build(small_dataset, profile))

    enabled = Telemetry.enabled()
    set_telemetry(enabled)
    traced_profile = profile.with_overrides(telemetry=enabled)
    traced = _fingerprint(_build(small_dataset, traced_profile))

    assert traced == baseline
    # The run actually recorded spans — the invariant is not vacuous.
    assert any(event.kind == "build" for event in enabled.tracer.events())


def test_metric_deltas_are_executor_independent(small_dataset,
                                                global_telemetry_guard):
    """Per-task deltas replayed at the barrier give executor-independent
    counts (timings differ; counts cannot)."""
    totals = {}
    for executor in ("serial", "parallel"):
        bundle = Telemetry()
        set_telemetry(bundle)
        profile = RuntimeProfile(seed=SEED, executor=executor,
                                 telemetry=bundle)
        _build(small_dataset, profile)
        registry = bundle.metrics
        totals[executor] = {
            "map": registry.counter_value("repro_tasks_total", phase="map"),
            "reduce": registry.counter_value("repro_tasks_total",
                                             phase="reduce"),
            "rounds": registry.counter_value("repro_build_rounds_total"),
            "shuffle": registry.counter_value(
                "repro_build_shuffle_bytes_total"),
            "map_observed": registry.histogram(
                "repro_task_seconds", phase="map").count,
        }
    assert totals["serial"] == totals["parallel"]
    assert totals["serial"]["map"] > 0
    # Every task's duration was observed exactly once.
    assert totals["serial"]["map_observed"] == totals["serial"]["map"]


@pytest.mark.parametrize("executor", ["serial", "parallel"])
def test_service_fanout_is_bit_identical_with_telemetry(
    small_dataset, global_telemetry_guard, executor
):
    workload = WorkloadGenerator(small_dataset.u, seed=3).generate(500, "mixed")

    def answers(telemetry):
        profile = RuntimeProfile(seed=SEED, executor=executor,
                                 telemetry=telemetry)
        service = SynopsisService(profile=profile, shard_size=64)
        service.build("send-v", small_dataset)
        return service.query_workload(["Send-V"], workload)["Send-V"]

    set_telemetry(Telemetry())
    baseline = answers(None)
    enabled = Telemetry.enabled()
    set_telemetry(enabled)
    traced = answers(enabled)
    np.testing.assert_array_equal(baseline, traced)
    assert any(event.name == "service.fanout"
               for event in enabled.tracer.events())


def test_streaming_publishes_identical_checksums_with_telemetry(
    global_telemetry_guard,
):
    rng = np.random.default_rng(5)
    batches = [rng.integers(1, 257, size=400) for _ in range(4)]

    def checksums(telemetry):
        profile = RuntimeProfile(seed=SEED, telemetry=telemetry)
        service = SynopsisService(profile=profile)
        versions = []
        for batch in batches:
            metadata = service.ingest("stream", batch, u=256, k=K, cadence=2)
            if metadata is not None:
                versions.append(metadata.checksum_sha256)
        return versions

    set_telemetry(Telemetry())
    baseline = checksums(None)
    enabled = Telemetry.enabled()
    set_telemetry(enabled)
    traced = checksums(enabled)
    assert baseline == traced and len(baseline) == 2
    names = {event.name for event in enabled.tracer.events()}
    assert {"maintain.checkpoint", "maintain.publish"} <= names


def test_scheduled_batch_is_bit_identical_with_telemetry(
    small_dataset, global_telemetry_guard
):
    def reports(telemetry, concurrent_jobs):
        profile = RuntimeProfile(seed=SEED, telemetry=telemetry,
                                 concurrent_jobs=concurrent_jobs)
        service = SynopsisService(profile=profile)
        built = service.build_many([
            ("send-v", small_dataset, "a"),
            ("h-wtopk", small_dataset, "b"),
        ])
        return [(r.name, r.version, r.checksum_sha256) for r in built], built

    set_telemetry(Telemetry())
    baseline, _ = reports(None, 1)
    enabled = Telemetry.enabled()
    set_telemetry(enabled)
    traced, built = reports(enabled, 2)
    assert traced == baseline
    # The scheduler batch surfaced its slot-pool statistics.
    stats = built[0].scheduler_stats
    assert stats is not None and stats.jobs == 2
    assert "jobs=2" in stats.describe()


def test_end_to_end_trace_round_trip(tmp_path, global_telemetry_guard, capsys):
    """Build -> ingest -> maintain -> query, exported as JSONL and rendered
    through the ``repro telemetry`` verb, with per-phase wall times and the
    serving latency histogram populated."""
    enabled = Telemetry.enabled()
    set_telemetry(enabled)
    store = SynopsisStore(str(tmp_path / "store"))
    profile = RuntimeProfile(seed=SEED, telemetry=enabled)
    service = SynopsisService(store=store, profile=profile)

    dataset_u = 256
    rng = np.random.default_rng(2)
    from repro.data.generators import ZipfDatasetGenerator

    dataset = ZipfDatasetGenerator(u=dataset_u, alpha=1.1, seed=2).generate(
        5_000, name="e2e")
    service.build("send-v", dataset, name="base")
    service.ingest("stream", rng.integers(1, dataset_u + 1, size=300),
                   u=dataset_u, cadence=2)
    service.ingest("stream", rng.integers(1, dataset_u + 1, size=300))
    service.maintain("stream", force=True)
    workload = WorkloadGenerator(dataset_u, seed=4).generate(200, "mixed")
    service.query_workload(["base", "stream"], workload)

    # Per-phase wall times made it into the registry...
    registry = enabled.metrics
    assert registry.histogram("repro_build_phase_seconds", phase="map").count > 0
    assert registry.histogram("repro_build_phase_seconds",
                              phase="reduce").count > 0
    # ...and the serving latency histogram is populated.
    assert registry.histogram("repro_serving_batch_seconds",
                              op="range_sum").count > 0

    trace_path = str(tmp_path / "trace.jsonl")
    count = enabled.tracer.export_jsonl(trace_path)
    assert count == len(Tracer.load_jsonl(trace_path)) > 0

    assert main(["telemetry", trace_path]) == 0
    rendered = capsys.readouterr().out
    for expected in ("build/phase:map", "build/phase:reduce", "build/round",
                     "store/store.save", "streaming/maintain.publish",
                     "serving/service.fanout", "per layer:"):
        assert expected in rendered
