"""End-to-end integration tests crossing all subsystems.

These tests run every algorithm over the same dataset through the full stack
(data generator → HDFS → MapReduce runtime → cost model → histogram) and check
the paper's headline relationships between them.
"""

from __future__ import annotations

import pytest

from repro import (
    HDFS,
    HWTopk,
    ImprovedSampling,
    SendCoef,
    SendSketch,
    SendV,
    TwoLevelSampling,
    WaveletHistogram,
    paper_cluster,
)
from repro.algorithms import BasicSampling
from repro.data.generators import ZipfDatasetGenerator

K = 20
EPSILON = 0.02


@pytest.fixture(scope="module")
def stack():
    dataset = ZipfDatasetGenerator(u=2048, alpha=1.1, seed=29).generate(80_000)
    hdfs = HDFS()
    dataset.to_hdfs(hdfs, "/data/input")
    cluster = paper_cluster(split_size_bytes=dataset.size_bytes // 32)
    reference = dataset.frequency_vector()
    ideal = WaveletHistogram.from_frequency_vector(reference, K)
    algorithms = {
        "Send-V": SendV(dataset.u, K),
        "Send-Coef": SendCoef(dataset.u, K),
        "H-WTopk": HWTopk(dataset.u, K),
        "Send-Sketch": SendSketch(dataset.u, K, bytes_per_level=16 * 1024),
        "Basic-S": BasicSampling(dataset.u, K, epsilon=EPSILON),
        "Improved-S": ImprovedSampling(dataset.u, K, epsilon=EPSILON),
        "TwoLevel-S": TwoLevelSampling(dataset.u, K, epsilon=EPSILON),
    }
    results = {name: algorithm.run(hdfs, "/data/input", cluster=cluster, seed=1)
               for name, algorithm in algorithms.items()}
    return dataset, reference, ideal, results


class TestExactness:
    def test_all_exact_methods_agree(self, stack):
        _, reference, ideal, results = stack
        ideal_sse = ideal.sse(reference)
        for name in ("Send-V", "Send-Coef", "H-WTopk"):
            assert results[name].histogram.sse(reference) == pytest.approx(ideal_sse, rel=1e-9)

    def test_exact_methods_return_k_coefficients(self, stack):
        _, _, _, results = stack
        for name in ("Send-V", "Send-Coef", "H-WTopk"):
            assert len(results[name].histogram) == K


class TestApproximationQuality:
    def test_every_approximation_is_reasonable(self, stack):
        _, reference, ideal, results = stack
        ideal_sse = ideal.sse(reference)
        total_energy = reference.energy()
        for name in ("Send-Sketch", "Basic-S", "Improved-S", "TwoLevel-S"):
            sse = results[name].histogram.sse(reference)
            assert ideal_sse * 0.999 <= sse  # cannot beat the optimum
            assert sse < total_energy  # better than the empty histogram

    def test_samplers_are_close_to_ideal(self, stack):
        _, reference, ideal, results = stack
        ideal_sse = ideal.sse(reference)
        for name in ("Basic-S", "Improved-S", "TwoLevel-S"):
            assert results[name].histogram.sse(reference) <= 2.0 * ideal_sse


class TestCostRelationships:
    def test_communication_ordering(self, stack):
        """The qualitative ordering of Figure 5(a)/17(a) at the scaled workload."""
        _, _, _, results = stack
        comm = {name: result.communication_bytes for name, result in results.items()}
        assert comm["H-WTopk"] < comm["Send-V"]
        assert comm["TwoLevel-S"] < comm["H-WTopk"]
        assert comm["TwoLevel-S"] < comm["Basic-S"]
        assert comm["Send-Coef"] > comm["Send-V"]

    def test_sampling_time_is_lowest(self, stack):
        _, _, _, results = stack
        times = {name: result.simulated_time_s for name, result in results.items()}
        assert times["TwoLevel-S"] < times["Send-V"]
        assert times["TwoLevel-S"] < times["Send-Sketch"]
        assert times["Send-Sketch"] > times["Send-V"]

    def test_round_counts(self, stack):
        _, _, _, results = stack
        expected_rounds = {"Send-V": 1, "Send-Coef": 1, "H-WTopk": 3, "Send-Sketch": 1,
                           "Basic-S": 1, "Improved-S": 1, "TwoLevel-S": 1}
        for name, rounds in expected_rounds.items():
            assert results[name].num_rounds == rounds

    def test_counters_are_merged_across_rounds(self, stack):
        _, _, _, results = stack
        hwtopk = results["H-WTopk"]
        from repro.mapreduce.counters import CounterNames

        per_round = sum(round_result.counters.get(CounterNames.SHUFFLE_BYTES)
                        for round_result in hwtopk.rounds)
        assert hwtopk.counters.get(CounterNames.SHUFFLE_BYTES) == pytest.approx(per_round)

    def test_histograms_support_queries(self, stack):
        dataset, reference, _, results = stack
        histogram = results["TwoLevel-S"].histogram
        exact_total = reference.total_count
        estimate = histogram.range_sum(1, dataset.u)
        assert estimate == pytest.approx(exact_total, rel=0.2)
