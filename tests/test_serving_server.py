"""Tests for the thread-safe, executor-pluggable query server (repro.serving.server)."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.histogram import WaveletHistogram
from repro.errors import InvalidParameterError, SynopsisNotFoundError
from repro.mapreduce.executor import (
    FunctionTaskSpec,
    ParallelExecutor,
    SerialExecutor,
    execute_function_task,
)
from repro.serving.server import QueryServer
from repro.serving.store import SynopsisStore
from repro.serving.workload import WorkloadGenerator


@pytest.fixture()
def populated_store(tmp_path):
    store = SynopsisStore(str(tmp_path / "store"))
    rng = np.random.default_rng(21)
    for name, u in (("web", 1024), ("orders", 256)):
        dense = rng.poisson(30.0, u).astype(float)
        store.save(name, WaveletHistogram.from_dense(dense, 24), algorithm="exact")
    return store


class TestQueryServer:
    def test_serves_range_point_and_selectivity(self, populated_store):
        server = QueryServer(populated_store)
        histogram = populated_store.load("web").histogram
        sums = server.range_sums("web", [1, 5], [1024, 100])
        assert sums[0] == pytest.approx(histogram.range_sum_scalar(1, 1024), abs=1e-9)
        points = server.estimates("web", [1, 2, 3])
        assert points[2] == pytest.approx(histogram.estimate(3), abs=1e-9)
        fractions = server.selectivities("web", [1], [1024])
        assert fractions[0] == pytest.approx(1.0, abs=1e-9)
        stats = server.stats()
        assert stats["queries_served"] == 2 + 3 + 1
        assert stats["batches_served"] == 3

    def test_version_pinning_and_refresh(self, populated_store):
        server = QueryServer(populated_store)
        first = server.range_sums("orders", [1], [256])
        rng = np.random.default_rng(99)
        replacement = WaveletHistogram.from_dense(
            rng.poisson(5.0, 256).astype(float), 24
        )
        populated_store.save("orders", replacement, algorithm="exact")
        # The server keeps serving its pinned snapshot until refreshed...
        assert np.array_equal(server.range_sums("orders", [1], [256]), first)
        # ...and explicit versions stay addressable after the refresh.
        server.refresh()
        v2 = server.range_sums("orders", [1], [256])
        assert v2[0] == pytest.approx(replacement.range_sum_scalar(1, 256), abs=1e-9)
        assert np.array_equal(server.range_sums("orders", [1], [256], version=1), first)

    def test_unknown_synopsis(self, populated_store):
        with pytest.raises(SynopsisNotFoundError):
            QueryServer(populated_store).range_sums("nope", [1], [2])

    def test_rejects_bad_shard_size(self, populated_store):
        with pytest.raises(InvalidParameterError):
            QueryServer(populated_store, shard_size=0)

    def test_workload_replay_matches_direct_engine(self, populated_store):
        server = QueryServer(populated_store)
        workload = WorkloadGenerator(1024, seed=8).generate(2_000, "mixed")
        served = server.serve_workload("web", workload)
        engine = populated_store.load("web").engine()
        assert np.array_equal(served, engine.range_sum_many(workload.los, workload.his))


class TestConcurrentDeterminism:
    def test_many_threads_get_bit_identical_answers(self, populated_store):
        server = QueryServer(populated_store, cache_size=256)
        workload = WorkloadGenerator(1024, seed=13).generate(5_000, "zipfian")
        reference = server.serve_workload("web", workload)

        def serve(_):
            return server.serve_workload("web", workload)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(serve, range(16)))
        for result in results:
            assert np.array_equal(result, reference)
        stats = server.stats()
        assert stats["queries_served"] == 5_000 * 17
        assert stats["batches_served"] == 17

    def test_concurrent_mixed_batches_are_isolated(self, populated_store):
        server = QueryServer(populated_store, cache_size=64)
        workloads = [
            WorkloadGenerator(1024, seed=seed).generate(500, "uniform")
            for seed in range(6)
        ]
        expected = [server.serve_workload("web", workload) for workload in workloads]

        def serve(index):
            return index, server.serve_workload("web", workloads[index])

        with ThreadPoolExecutor(max_workers=6) as pool:
            for index, result in pool.map(serve, list(range(6)) * 4):
                assert np.array_equal(result, expected[index])


class TestEngineTableEviction:
    def _many_synopses_store(self, tmp_path, count=6, u=256):
        store = SynopsisStore(str(tmp_path / "many"))
        rng = np.random.default_rng(3)
        for index in range(count):
            dense = rng.poisson(10.0, u).astype(float)
            store.save(f"syn-{index}", WaveletHistogram.from_dense(dense, 16),
                       algorithm="exact")
        return store

    def test_lru_bound_is_enforced(self, tmp_path):
        store = self._many_synopses_store(tmp_path)
        server = QueryServer(store, max_synopses=2)
        for index in range(6):
            server.range_sums(f"syn-{index}", [1], [256])
        stats = server.stats()
        assert stats["synopses_resident"] <= 2
        assert stats["synopses_evicted"] >= 4

    def test_eviction_preserves_answers(self, tmp_path):
        store = self._many_synopses_store(tmp_path)
        unbounded = QueryServer(store, max_synopses=None)
        bounded = QueryServer(store, max_synopses=1)
        workload = WorkloadGenerator(256, seed=5).generate(200, "mixed")
        for _ in range(2):  # second pass re-faults evicted synopses in
            for index in range(6):
                name = f"syn-{index}"
                assert np.array_equal(
                    bounded.serve_workload(name, workload),
                    unbounded.serve_workload(name, workload),
                )
        assert bounded.stats()["synopses_evicted"] > 0
        assert unbounded.stats()["synopses_evicted"] == 0

    def test_recently_used_synopses_survive(self, tmp_path):
        store = self._many_synopses_store(tmp_path)
        server = QueryServer(store, max_synopses=2)
        hot = server.synopsis("syn-0")
        for index in range(1, 6):
            server.range_sums(f"syn-{index}", [1], [256])
            server.range_sums("syn-0", [1], [256])  # keep the hot entry warm
        # The hot synopsis was never evicted: same handle throughout.
        assert server.synopsis("syn-0") is hot

    def test_rejects_non_positive_bound(self, populated_store):
        with pytest.raises(InvalidParameterError):
            QueryServer(populated_store, max_synopses=0)


class TestExecutorPluggability:
    def test_function_task_spec_round_trip(self):
        spec = FunctionTaskSpec(task_id=3, function=len, payload=[1, 2, 3])
        result = execute_function_task(spec)
        assert result.task_id == 3
        assert result.pairs == [("result", 3, 0)]

    def test_serial_executor_sharding_matches_unsharded(self, populated_store):
        workload = WorkloadGenerator(1024, seed=17).generate(4_000, "mixed")
        plain = QueryServer(populated_store).serve_workload("web", workload)
        sharded_server = QueryServer(
            populated_store, executor=SerialExecutor(), shard_size=512
        )
        sharded = sharded_server.serve_workload("web", workload)
        assert np.array_equal(sharded, plain)

    def test_small_batches_are_never_sharded(self, populated_store):
        server = QueryServer(populated_store, executor=SerialExecutor(), shard_size=512)
        small = WorkloadGenerator(1024, seed=19).generate(100, "uniform")
        plain = QueryServer(populated_store).serve_workload("web", small)
        assert np.array_equal(server.serve_workload("web", small), plain)

    def test_parallel_executor_sharding_matches_serial(self, populated_store):
        workload = WorkloadGenerator(1024, seed=23).generate(6_000, "mixed")
        plain = QueryServer(populated_store).serve_workload("web", workload)
        executor = ParallelExecutor(max_workers=2)
        try:
            server = QueryServer(populated_store, executor=executor, shard_size=1024)
            sharded = server.serve_workload("web", workload)
        finally:
            executor.close()
        np.testing.assert_allclose(sharded, plain, rtol=1e-12, atol=1e-9)
