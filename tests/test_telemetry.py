"""Tests for the telemetry layer: registry, deltas, tracer, exposition."""

from __future__ import annotations

import math
import pickle

import pytest

from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsDelta,
    MetricsRegistry,
    Telemetry,
    Tracer,
    active_telemetry,
    apply_task_metrics,
    get_telemetry,
    registry_to_json,
    registry_to_prometheus,
    render_metrics_summary,
    render_trace_summary,
    set_telemetry,
)


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        hist = Histogram(buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 99.0, 1000.0):
            hist.observe(value)
        # le=1.0 catches 0.5 and 1.0; le=10 catches 5.0; le=100 catches 99.0;
        # the implicit +inf slot catches 1000.0.
        assert hist.bucket_counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(1105.5)
        assert hist.min == 0.5 and hist.max == 1000.0

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram(buckets=(1.0,)).quantile(0.5))

    def test_quantile_interpolates_within_a_bucket(self):
        hist = Histogram(buckets=(0.0, 10.0))
        for value in (1.0, 4.0, 6.0, 9.0):
            hist.observe(value)
        # All four observations sit in the (0, 10] bucket; the median
        # interpolates to the bucket midpoint.
        assert hist.quantile(0.5) == pytest.approx(5.0)
        assert 0.0 < hist.quantile(0.01) < hist.quantile(0.99) <= 10.0

    def test_quantile_with_baseline_reads_only_the_delta(self):
        hist = Histogram(buckets=(1.0, 10.0, 100.0))
        hist.observe(50.0)  # pre-existing observation, excluded below
        baseline = hist.copy()
        hist.observe(0.5)
        hist.observe(0.7)
        # Against the baseline only the two sub-1.0 observations count.
        assert hist.quantile(0.99, baseline=baseline) <= 1.0
        # Without a baseline the old 50.0 dominates the tail.
        assert hist.quantile(0.99) > 10.0

    def test_quantile_baseline_must_match_bounds(self):
        hist = Histogram(buckets=(1.0, 2.0))
        other = Histogram(buckets=(1.0, 3.0))
        with pytest.raises(ValueError):
            hist.quantile(0.5, baseline=other)

    def test_quantile_rejects_out_of_range_q(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(0.5)
        with pytest.raises(ValueError):
            hist.quantile(1.5)


class TestMetricsRegistry:
    def test_counters_accumulate_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("tasks", 1.0, phase="map")
        registry.inc("tasks", 2.0, phase="map")
        registry.inc("tasks", 5.0, phase="reduce")
        assert registry.counter_value("tasks", phase="map") == 3.0
        assert registry.counter_value("tasks", phase="reduce") == 5.0
        assert registry.counter_value("tasks", phase="missing") == 0.0

    def test_gauge_keeps_the_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("pending", 3, stream="s")
        registry.set_gauge("pending", 1, stream="s")
        assert registry.gauge_value("pending", stream="s") == 1.0

    def test_histogram_is_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.histogram("lat", op="x")
        second = registry.histogram("lat", op="x")
        assert first is second
        registry.observe("lat", 0.5, op="x")
        assert first.count == 1

    def test_snapshot_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.inc("b_total")
        registry.inc("a_total", 2.0, z="1", a="2")
        registry.set_gauge("g", 7.0)
        registry.observe("h_seconds", 0.01)
        snapshot = registry.snapshot()
        assert [entry["name"] for entry in snapshot["counters"]] == [
            "a_total", "b_total"]
        assert snapshot["counters"][0]["labels"] == {"a": "2", "z": "1"}
        assert snapshot["gauges"][0]["value"] == 7.0
        assert snapshot["histograms"][0]["count"] == 1

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 1.0)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == []
        assert snapshot["histograms"] == []


class TestMetricsDelta:
    """Per-task deltas mirror the Counters barrier discipline."""

    def test_replay_matches_direct_operations(self):
        direct = MetricsRegistry()
        direct.inc("n", 2.0, phase="map")
        direct.set_gauge("g", 4.0)
        direct.observe("h_seconds", 0.25)

        delta = MetricsDelta()
        delta.inc("n", 2.0, phase="map")
        delta.set_gauge("g", 4.0)
        delta.observe("h_seconds", 0.25)
        replayed = MetricsRegistry()
        replayed.apply_delta(delta)

        assert replayed.snapshot() == direct.snapshot()

    def test_merge_preserves_operation_order(self):
        a = MetricsDelta()
        a.set_gauge("g", 1.0)
        b = MetricsDelta()
        b.set_gauge("g", 2.0)
        merged = MetricsDelta()
        merged.merge(a)
        merged.merge(b)
        registry = MetricsRegistry()
        registry.apply_delta(merged)
        # Task-order replay: the later task's gauge wins, deterministically.
        assert registry.gauge_value("g") == 2.0

    def test_task_order_replay_is_deterministic(self):
        """Replaying per-task deltas in task order equals one serial pass."""
        serial = MetricsRegistry()
        deltas = []
        for task_id in range(8):
            delta = MetricsDelta()
            delta.inc("tasks_total", 1.0, phase="map")
            delta.observe("task_seconds", 0.001 * (task_id + 1), phase="map")
            serial.inc("tasks_total", 1.0, phase="map")
            serial.observe("task_seconds", 0.001 * (task_id + 1), phase="map")
            deltas.append(delta)
        merged = MetricsRegistry()
        for delta in deltas:  # task order — the barrier discipline
            merged.apply_delta(delta)
        assert merged.snapshot() == serial.snapshot()

    def test_deltas_are_picklable(self):
        delta = MetricsDelta()
        delta.inc("n", 1.0, phase="map")
        delta.observe("h", 0.5)
        clone = pickle.loads(pickle.dumps(delta))
        assert clone.entries == delta.entries

    def test_empty_delta_is_falsy(self):
        delta = MetricsDelta()
        assert not delta and len(delta) == 0
        delta.inc("n")
        assert delta and len(delta) == 1

    def test_unknown_operation_raises(self):
        delta = MetricsDelta()
        delta.entries.append(("bogus", "n", (), 1.0))
        with pytest.raises(ValueError):
            MetricsRegistry().apply_delta(delta)

    def test_apply_task_metrics_replays_in_iteration_order(self):
        class FakeResult:
            def __init__(self, delta):
                self.metrics = delta

        first = MetricsDelta()
        first.set_gauge("g", 1.0)
        second = MetricsDelta()
        second.set_gauge("g", 2.0)
        registry = MetricsRegistry()
        apply_task_metrics([FakeResult(first), None, FakeResult(second)],
                           registry)
        assert registry.gauge_value("g") == 2.0
        # A None registry is an explicit no-op.
        apply_task_metrics([FakeResult(first)], None)


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer", kind="test"):
            tracer.record("inner", kind="test", duration_s=0.1)
        assert tracer.events() == []

    def test_span_nesting_links_parents(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", kind="test"):
            with tracer.span("inner", kind="test"):
                pass
        events = tracer.events()
        inner = next(e for e in events if e.name == "inner")
        outer = next(e for e in events if e.name == "outer")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.duration_s >= inner.duration_s >= 0.0

    def test_span_ids_are_monotonic_ints(self):
        tracer = Tracer(enabled=True)
        for _ in range(5):
            with tracer.span("s", kind="test"):
                pass
        ids = [event.span_id for event in tracer.events()]
        assert ids == sorted(ids)
        assert all(isinstance(span_id, int) for span_id in ids)

    def test_span_attribute_may_be_called_name(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", kind="test", name="attribute-name"):
            pass
        assert tracer.events()[0].attributes["name"] == "attribute-name"

    def test_error_is_attached_when_an_exception_flies(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("failing", kind="test"):
                raise RuntimeError("boom")
        assert tracer.events()[0].attributes.get("error") is True

    def test_set_adds_mid_span_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", kind="test") as span:
            span.set(bytes=123)
        assert tracer.events()[0].attributes["bytes"] == 123

    def test_max_events_bounds_memory(self):
        tracer = Tracer(enabled=True, max_events=2)
        for _ in range(5):
            tracer.record("e", kind="test")
        assert len(tracer.events()) == 2
        assert tracer.dropped == 3

    def test_jsonl_round_trip(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", kind="test", label="x"):
            tracer.record("point", kind="test", duration_s=0.01, n=3)
        path = str(tmp_path / "trace.jsonl")
        count = tracer.export_jsonl(path)
        assert count == 2
        loaded = Tracer.load_jsonl(path)
        assert loaded == tracer.events()


class TestExposition:
    def _populated(self):
        registry = MetricsRegistry()
        registry.inc("repro_tasks_total", 3.0, phase="map")
        registry.set_gauge("repro_pending", 1.0, stream="s")
        registry.observe("repro_task_seconds", 0.002, phase="map")
        return registry

    def test_prometheus_text_shape(self):
        text = registry_to_prometheus(self._populated())
        assert "# TYPE repro_tasks_total counter" in text
        assert 'repro_tasks_total{phase="map"} 3' in text
        assert "# TYPE repro_pending gauge" in text
        assert "# TYPE repro_task_seconds histogram" in text
        assert 'repro_task_seconds_bucket{phase="map",le="+Inf"} 1' in text
        assert 'repro_task_seconds_count{phase="map"} 1' in text

    def test_prometheus_bucket_series_is_cumulative(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.5, buckets=(1.0, 10.0))
        registry.observe("h", 5.0, buckets=(1.0, 10.0))
        registry.observe("h", 50.0, buckets=(1.0, 10.0))
        text = registry_to_prometheus(registry)
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="10"} 2' in text
        assert 'h_bucket{le="+Inf"} 3' in text

    def test_json_snapshot_round_trips(self):
        import json

        registry = self._populated()
        snapshot = json.loads(registry_to_json(registry))
        assert snapshot == registry.snapshot()
        lines = render_metrics_summary(snapshot)
        assert any("repro_tasks_total" in line for line in lines)

    def test_metrics_summary_units(self):
        registry = MetricsRegistry()
        registry.observe("repro_store_payload_bytes", 4096.0, buckets=(1.0,))
        registry.observe("repro_save_seconds", 0.004)
        lines = render_metrics_summary(registry.snapshot())
        byte_line = next(l for l in lines if "payload_bytes" in l)
        seconds_line = next(l for l in lines if "save_seconds" in l)
        assert "ms" not in byte_line and "4096" in byte_line
        assert "ms" in seconds_line

    def test_trace_summary_groups_and_rolls_up(self):
        tracer = Tracer(enabled=True)
        tracer.record("phase:map", kind="build", duration_s=0.2)
        tracer.record("phase:map", kind="build", duration_s=0.1)
        tracer.record("store.save", kind="store", duration_s=0.05)
        lines = render_trace_summary(tracer.events())
        assert lines[0] == "3 spans"
        body = "\n".join(lines)
        assert "build/phase:map" in body and "store/store.save" in body
        assert "per layer:" in lines[-1]
        # Heaviest group leads.
        assert body.index("build/phase:map") < body.index("store/store.save")

    def test_trace_summary_empty(self):
        assert render_trace_summary([]) == ["(no spans recorded)"]


class TestGlobalTelemetry:
    def test_set_get_round_trip(self):
        original = get_telemetry()
        bundle = Telemetry.enabled()
        try:
            previous = set_telemetry(bundle)
            assert previous is original
            assert get_telemetry() is bundle
            assert active_telemetry() is bundle
            other = Telemetry()
            assert active_telemetry(other) is other
        finally:
            set_telemetry(original)

    def test_set_rejects_non_telemetry(self):
        with pytest.raises(TypeError):
            set_telemetry(object())

    def test_default_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
