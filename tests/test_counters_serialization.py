"""Tests for counters and the serialized-size model (repro.mapreduce)."""

from __future__ import annotations

import random

import pytest

from repro.mapreduce.counters import CounterNames, Counters
from repro.mapreduce.serialization import DEFAULT_SERIALIZATION, SerializationModel


class TestCounters:
    def test_increment_and_get(self):
        counters = Counters()
        counters.increment("a")
        counters.increment("a", 4)
        assert counters.get("a") == 5
        assert counters.get("missing") == 0

    def test_merge_is_elementwise_sum(self):
        a = Counters({"x": 1.0, "y": 2.0})
        b = Counters({"y": 3.0, "z": 4.0})
        merged = a.merge(b)
        assert merged.as_dict() == {"x": 1.0, "y": 5.0, "z": 4.0}
        # Originals untouched.
        assert a.get("y") == 2.0 and b.get("y") == 3.0

    def test_iteration_and_len(self):
        counters = Counters({"a": 1.0, "b": 2.0})
        assert dict(counters) == {"a": 1.0, "b": 2.0}
        assert len(counters) == 2

    def test_well_known_names_are_distinct(self):
        names = [value for key, value in vars(CounterNames).items() if not key.startswith("_")]
        assert len(names) == len(set(names))


class TestIncrementBy:
    """``increment_by`` must match repeated ``increment`` calls bit for bit."""

    @staticmethod
    def _reference(amount, times, start=0.0):
        counters = Counters({"c": start} if start else {})
        for _ in range(times):
            counters.increment("c", amount)
        return counters.get("c")

    @pytest.mark.parametrize("amount,times", [
        (1.0, 1), (1.0, 1000), (1.0, 640_000),       # per-record charges
        (8.0, 4096), (12.0, 99_999), (4.0, 123_457),  # per-byte charges
        (0.5, 777), (0.25, 10_000),                   # dyadic fractions
        (0.1, 3), (0.1, 1000), (1e-3, 500),           # non-integral fallback
        (0.0, 50),
    ])
    def test_matches_repeated_increments_exactly(self, amount, times):
        counters = Counters()
        counters.increment_by("c", amount, times)
        assert counters.get("c") == self._reference(amount, times)

    def test_matches_from_a_nonzero_float_start(self):
        for start in (0.5, 3.25, 1e6 + 0.125):
            counters = Counters({"c": start})
            counters.increment_by("c", 7.0, 12_345)
            assert counters.get("c") == self._reference(7.0, 12_345, start=start)

    def test_interleaved_mixed_sequence_matches_loop(self):
        """A randomised mix of batched and unit charges accumulates identically."""
        rng = random.Random(99)
        batched = Counters()
        looped = Counters()
        for _ in range(200):
            amount = rng.choice([1.0, 2.0, 8.0, 0.5, 0.1, 12.0])
            times = rng.randrange(0, 50)
            batched.increment_by("c", amount, times)
            for _ in range(times):
                looped.increment("c", amount)
        assert batched.get("c") == looped.get("c")

    def test_zero_times_is_a_noop_and_negative_raises(self):
        counters = Counters()
        counters.increment_by("c", 5.0, 0)
        assert "c" not in counters.values
        with pytest.raises(ValueError):
            counters.increment_by("c", 1.0, -1)

    def test_default_times_is_one(self):
        counters = Counters()
        counters.increment_by("c", 3.0)
        assert counters.get("c") == 3.0


class TestSerializationModel:
    def test_value_sizes(self):
        model = DEFAULT_SERIALIZATION
        assert model.value_size(None) == 0
        assert model.value_size(7) == 4
        assert model.value_size(True) == 4
        assert model.value_size(3.14) == 8
        assert model.value_size((1, 2.0)) == 12
        assert model.value_size([1, 2, 3]) == 12
        assert model.value_size(b"abcd") == 4
        assert model.value_size("hi") == 2
        assert model.value_size({1: 2.0}) == 12

    def test_pair_size_default_and_explicit(self):
        model = DEFAULT_SERIALIZATION
        assert model.pair_size(1, 2.0) == 12
        assert model.pair_size(1, 2.0, explicit=100) == 100

    def test_pair_overhead(self):
        model = SerializationModel(pair_overhead_bytes=6)
        assert model.pair_size(1, 1) == 14
        assert model.pair_size(1, 1, explicit=8) == 14

    def test_object_with_serialized_size_attribute(self):
        class Blob:
            def serialized_size_bytes(self):
                return 123

        assert DEFAULT_SERIALIZATION.value_size(Blob()) == 123

    def test_unknown_type_raises(self):
        with pytest.raises(TypeError):
            DEFAULT_SERIALIZATION.value_size(object())

    def test_record_pair(self):
        assert DEFAULT_SERIALIZATION.record_pair(1, 2.5) == (4, 8)
