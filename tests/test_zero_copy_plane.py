"""Zero-copy data plane suite (PR 10): shipping, segments, mmap, equivalence.

The invariants under test:

* **Out-of-band shipping round-trips.**  A spec shipped through a
  :class:`~repro.mapreduce.serialization.ShipmentArena` rebuilds with the
  exact same values; shared-memory-backed arrays come back **read-only**
  (they alias the coordinator's pages) while small in-band buffers keep
  ordinary pickle-copy semantics.  The serial executor ships nothing at all —
  tasks see the coordinator's own objects by reference.

* **Segment lifecycle is leak-free.**  Every path that creates shared-memory
  segments — the phase barrier, scheduler task handles, executor close,
  failed phases, and chaos runs that kill workers mid-build — drains
  :func:`~repro.mapreduce.serialization.live_shipment_segments` back to
  empty.

* **mmap'd payloads equal eager reads byte-for-byte**, the resident-bytes
  gauge tracks map/release, and engines built over a mapped payload share
  its memory instead of copying it.

* **Zero-copy never changes results.**  Coefficients, counters, per-round
  outputs, shuffle bytes and stored checksums are bit-identical across
  ``zero_copy`` on/off, executors and data planes.

Run any suite under the reference copying path with ``--zero-copy off``
(see the root ``conftest.py``).
"""

from __future__ import annotations

import mmap

import numpy as np
import pytest

from repro.algorithms import SendV
from repro.core.histogram import WaveletHistogram
from repro.errors import InvalidParameterError, TaskPermanentError
from repro.mapreduce.cluster import paper_cluster
from repro.mapreduce.columnar import ColumnarBlock
from repro.mapreduce.executor import (
    FunctionTaskSpec,
    ParallelExecutor,
    SerialExecutor,
)
from repro.mapreduce.faults import FaultInjector, RetryPolicy
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.serialization import (
    OOB_THRESHOLD_BYTES,
    SegmentCache,
    ShipmentArena,
    live_shipment_segments,
    load_shipped,
    set_zero_copy_default,
)
from repro.serving.engine import BatchQueryEngine
from repro.sketches.gcs import GroupCountSketch
from repro.serving.store import (
    SynopsisStore,
    deserialize_arrays,
    serialize_histogram,
)
from repro.service import RuntimeProfile, SynopsisService
from repro.telemetry import get_telemetry

U = 64
K = 10
SEED = 7

# rate=1.0 faults every eligible attempt (see test_fault_tolerance).
ALWAYS = 1.0

# Comfortably above OOB_THRESHOLD_BYTES so arrays always ship out-of-band.
BIG_ELEMENTS = max(4096, OOB_THRESHOLD_BYTES)


def _cluster(dataset):
    return paper_cluster(split_size_bytes=max(4, dataset.size_bytes // 6))


def _run(algorithm_factory, dataset, executor, data_plane="batch",
         zero_copy=True):
    hdfs = HDFS()
    dataset.to_hdfs(hdfs, "/data/input")
    profile = RuntimeProfile(cluster=_cluster(dataset), seed=SEED,
                             executor=executor, data_plane=data_plane,
                             zero_copy=zero_copy)
    return algorithm_factory().run(hdfs, "/data/input", profile=profile)


def _assert_identical(clean, other):
    assert clean.histogram.coefficients == other.histogram.coefficients
    assert clean.counters.as_dict() == other.counters.as_dict()
    assert clean.num_rounds == other.num_rounds
    for clean_round, other_round in zip(clean.rounds, other.rounds):
        assert clean_round.output == other_round.output
        assert clean_round.shuffle_bytes == other_round.shuffle_bytes
    assert clean.communication_bytes == other.communication_bytes


def _histogram(u: int = 128, k: int = 20, seed: int = 5) -> WaveletHistogram:
    rng = np.random.default_rng(seed)
    dense = rng.poisson(12.0, u).astype(float)
    return WaveletHistogram.from_dense(dense, k)


# Worker task bodies must be module-level (the picklability contract).
def _identity(payload):
    return payload


def _payload_sum(payload):
    return float(np.asarray(payload).sum())


# ------------------------------------------------------- protocol-5 shipping
class TestShipmentRoundTrip:
    def test_large_buffers_travel_out_of_band_and_rebuild_read_only(self):
        keys = np.arange(BIG_ELEMENTS, dtype=np.int64)
        values = np.linspace(0.0, 1.0, BIG_ELEMENTS)
        with ShipmentArena() as arena:
            shipped = arena.ship({"keys": keys, "values": values})
            assert shipped.oob_bytes == keys.nbytes + values.nbytes
            assert shipped.inline_bytes == len(shipped.payload)
            assert len(arena.segment_names) == 1
            assert set(arena.segment_names) <= set(live_shipment_segments())
            cache = SegmentCache()
            rebuilt = load_shipped(shipped, cache=cache)
            np.testing.assert_array_equal(rebuilt["keys"], keys)
            np.testing.assert_array_equal(rebuilt["values"], values)
            # Shared pages are exposed read-only: mutation cannot corrupt the
            # coordinator's arrays (or a sibling task's view of them).
            assert not rebuilt["keys"].flags.writeable
            assert not rebuilt["values"].flags.writeable
            del rebuilt
            cache.close()
        assert arena.released
        assert live_shipment_segments() == ()

    def test_shipped_sketch_accumulator_merges_copy_on_write(self):
        # Regression: a sketch rebuilt from out-of-band buffers carries a
        # read-only table; using it as the merge accumulator must take a
        # private copy instead of mutating the shared pages (the Send-Sketch
        # reducer hit "output array is read-only" at benchmark scale, where
        # tables exceed OOB_THRESHOLD_BYTES).
        left = GroupCountSketch(universe=256, shift=3, seed=17)
        right = GroupCountSketch(universe=256, shift=3, seed=17)
        rng = np.random.default_rng(11)
        items = rng.integers(0, 256, size=500, dtype=np.int64)
        left.update_batch(items[:250], np.ones(250))
        right.update_batch(items[250:], np.ones(250))
        original = left._table.copy()
        expected = left._table + right._table
        with ShipmentArena() as arena:
            shipped = arena.ship({"sketch": left})
            assert shipped.oob_bytes > 0
            cache = SegmentCache()
            rebuilt = load_shipped(shipped, cache=cache)["sketch"]
            assert not rebuilt._table.flags.writeable
            rebuilt.merge_in_place(right)
            np.testing.assert_array_equal(rebuilt._table, expected)
            # The coordinator's copy (and the shared pages) stay untouched.
            np.testing.assert_array_equal(left._table, original)
            del rebuilt
            cache.close()
        assert live_shipment_segments() == ()

    def test_small_buffers_stay_inline_and_writable(self):
        small = np.arange(8, dtype=np.int64)
        with ShipmentArena() as arena:
            shipped = arena.ship({"small": small})
            assert shipped.oob_bytes == 0
            assert arena.segment_names == ()
            rebuilt = load_shipped(shipped, cache=SegmentCache())
            np.testing.assert_array_equal(rebuilt["small"], small)
            # In-band buffers are pickle copies: ordinary mutable arrays.
            assert rebuilt["small"].flags.writeable

    def test_repeated_buffer_occupies_shared_memory_once(self):
        coefficients = np.arange(BIG_ELEMENTS, dtype=np.int64)
        with ShipmentArena() as arena:
            first = arena.ship({"shard": 0, "coefficients": coefficients})
            second = arena.ship({"shard": 1, "coefficients": coefficients})
            assert first.oob_bytes == coefficients.nbytes
            assert second.oob_bytes == 0  # deduplicated against the first
            assert len(arena.segment_names) == 1
            cache = SegmentCache()
            one = load_shipped(first, cache=cache)["coefficients"]
            two = load_shipped(second, cache=cache)["coefficients"]
            np.testing.assert_array_equal(one, coefficients)
            np.testing.assert_array_equal(two, coefficients)
            del one, two
            cache.close()
        assert live_shipment_segments() == ()

    def test_release_is_idempotent_and_blocks_further_shipping(self):
        arena = ShipmentArena()
        arena.ship({"x": np.arange(BIG_ELEMENTS, dtype=np.int64)})
        arena.release()
        arena.release()
        assert arena.released
        assert live_shipment_segments() == ()
        with pytest.raises(ValueError):
            arena.ship({"y": 1})

    def test_inline_fallback_without_shared_memory(self):
        keys = np.arange(BIG_ELEMENTS, dtype=np.int64)
        before = live_shipment_segments()
        arena = ShipmentArena(use_shared_memory=False)
        shipped = arena.ship({"keys": keys})
        assert shipped.oob_bytes == 0
        assert shipped.inline_bytes == len(shipped.payload) + keys.nbytes
        assert all(ref.segment is None for ref in shipped.buffers)
        assert live_shipment_segments() == before
        rebuilt = load_shipped(shipped, cache=SegmentCache())
        np.testing.assert_array_equal(rebuilt["keys"], keys)
        arena.release()


class TestSerialPassThrough:
    def test_serial_executor_passes_payload_buffers_by_reference(self):
        payload = np.arange(BIG_ELEMENTS, dtype=np.int64)
        spec = FunctionTaskSpec(task_id=0, function=_identity, payload=payload)
        results = SerialExecutor().run_tasks([spec], slots=1)
        returned = results[0].pairs[0][1]
        # Zero serialization on the serial path: the task saw the object
        # itself, not a rebuilt copy.
        assert returned is payload
        assert np.shares_memory(returned, payload)


# --------------------------------------------------------- segment lifecycle
class TestSegmentLifecycle:
    def _specs(self, count: int = 4):
        return [
            FunctionTaskSpec(task_id=index, function=_payload_sum,
                             payload=np.full(BIG_ELEMENTS, index,
                                             dtype=np.int64),
                             zero_copy=True)
            for index in range(count)
        ]

    def test_phase_barrier_unlinks_every_segment(self):
        executor = ParallelExecutor(max_workers=2)
        try:
            results = executor.run_tasks(self._specs(), slots=4)
            assert [result.pairs[0][1] for result in results] == [
                float(index * BIG_ELEMENTS) for index in range(4)
            ]
            assert live_shipment_segments() == ()
        finally:
            executor.close()
        assert live_shipment_segments() == ()

    def test_scheduler_handle_releases_on_completion(self):
        executor = ParallelExecutor(max_workers=2)
        try:
            handle = executor.submit_task(self._specs(count=1)[0])
            assert live_shipment_segments() != ()  # shipped and in flight
            while not executor.wait_any([handle]):
                pass
            assert live_shipment_segments() == ()
            assert handle.result().pairs[0][1] == 0.0
        finally:
            executor.close()

    def test_executor_close_releases_abandoned_handles(self):
        executor = ParallelExecutor(max_workers=2)
        handle = executor.submit_task(self._specs(count=1)[0])
        assert live_shipment_segments() != ()
        executor.close()
        assert live_shipment_segments() == ()
        # The already-submitted task still ran to completion before shutdown.
        assert handle.result().pairs[0][1] == 0.0

    def test_failed_phase_unlinks_segments(self):
        executor = ParallelExecutor(
            max_workers=2,
            retry_policy=RetryPolicy(max_attempts=2),
            fault_injector=FaultInjector(rate=ALWAYS, seed=11,
                                         max_faults_per_task=10),
        )
        try:
            with pytest.raises(TaskPermanentError):
                executor.run_tasks(self._specs(), slots=4)
            assert live_shipment_segments() == ()
        finally:
            executor.close()
        assert live_shipment_segments() == ()

    def test_chaos_pool_rebuild_reclaims_segments_and_matches_clean(
            self, tiny_dataset):
        clean = _run(lambda: SendV(U, K), tiny_dataset, SerialExecutor())
        executor = ParallelExecutor(
            max_workers=2,
            fault_injector=FaultInjector(rate=0.5, seed=3, kill_fraction=1.0))
        before = get_telemetry().metrics.counter_value(
            "repro_pool_rebuilds_total")
        try:
            faulted = _run(lambda: SendV(U, K), tiny_dataset, executor)
            after = get_telemetry().metrics.counter_value(
                "repro_pool_rebuilds_total")
            assert after > before, "no worker died; the test proves nothing"
            _assert_identical(clean, faulted)
            assert live_shipment_segments() == ()
        finally:
            executor.close()
        assert live_shipment_segments() == ()


# ----------------------------------------------------------- mmap'd payloads
class TestMmapPayloads:
    def test_view_matches_eager_read_byte_for_byte(self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        metadata = store.save("orders", _histogram(), algorithm="Send-V")
        metrics = get_telemetry().metrics
        before = metrics.counter_value("repro_payload_mmap_total")
        view = store.backend.read_payload_view("orders", metadata.version)
        eager = store.backend.read_payload("orders", metadata.version)
        try:
            assert isinstance(view.obj, mmap.mmap)
            assert bytes(view) == eager
            assert metrics.counter_value(
                "repro_payload_mmap_total") == before + 1
        finally:
            owner = view.obj
            view.release()
            owner.close()

    def test_memory_backend_views_are_heap_backed(self):
        store = SynopsisStore.in_memory()
        metadata = store.save("d", _histogram())
        view = store.backend.read_payload_view("d", metadata.version)
        assert not isinstance(view.obj, mmap.mmap)
        assert bytes(view) == store.backend.read_payload("d", metadata.version)

    def test_loaded_synopsis_maps_shares_and_releases_resident_bytes(
            self, tmp_path):
        store = SynopsisStore(str(tmp_path))
        histogram = _histogram()
        store.save("orders", histogram, algorithm="Send-V")
        metrics = get_telemetry().metrics

        def mapped_resident():
            value = metrics.gauge_value("repro_payload_bytes_resident",
                                        kind="mapped")
            return value if value is not None else 0.0

        before = mapped_resident()
        loaded = store.load("orders")
        indices, values = loaded.coefficient_arrays()
        assert mapped_resident() > before
        assert dict(zip(indices.tolist(),
                        values.tolist())) == histogram.coefficients
        # The engine adopts the mapped arrays instead of copying them.
        engine = loaded.engine()
        engine_indices, engine_values = engine.coefficient_arrays()
        assert np.shares_memory(engine_indices, indices)
        assert np.shares_memory(engine_values, values)
        assert not engine_indices.flags.writeable

        del engine, engine_indices, engine_values, indices, values
        assert loaded.release() > 0
        assert mapped_resident() == before
        # Eviction is not destruction: the next touch faults the payload back.
        assert loaded.histogram.coefficients == histogram.coefficients
        loaded.release()
        assert mapped_resident() == before

    def test_deserialize_arrays_views_the_payload_without_copying(self):
        histogram = _histogram()
        payload = serialize_histogram(histogram)
        u, count, indices, values = deserialize_arrays(payload)
        assert u == histogram.u
        assert count == indices.size
        assert dict(zip(indices.tolist(),
                        values.tolist())) == histogram.coefficients
        raw = np.frombuffer(payload, dtype=np.uint8)
        assert np.shares_memory(indices, raw)
        assert np.shares_memory(values, raw)
        assert not indices.flags.writeable


# --------------------------------------------- from_arrays zero-copy adoption
class TestFromArraysZeroCopy:
    def test_conforming_arrays_are_adopted_without_copying(self):
        indices = np.array([1, 2, 5, 9], dtype=np.int64)
        values = np.array([4.0, -1.5, 2.25, 0.5])
        engine = BatchQueryEngine.from_arrays(16, indices, values)
        adopted_indices, adopted_values = engine.coefficient_arrays()
        assert np.shares_memory(adopted_indices, indices)
        assert np.shares_memory(adopted_values, values)
        assert not adopted_indices.flags.writeable
        assert not adopted_values.flags.writeable
        # The engine froze its own views; the caller's arrays are untouched.
        assert indices.flags.writeable and values.flags.writeable

    def test_non_conforming_arrays_fall_back_to_the_reference_path(self):
        unsorted = BatchQueryEngine.from_arrays(
            16, np.array([5, 1, 9, 2], dtype=np.int32),
            [2.25, 4.0, 0.5, -1.5])
        reference = BatchQueryEngine.from_arrays(
            16, np.array([1, 2, 5, 9], dtype=np.int64),
            np.array([4.0, -1.5, 2.25, 0.5]))
        los = np.arange(1, 17, dtype=np.int64)
        his = np.full(16, 16, dtype=np.int64)
        np.testing.assert_allclose(unsorted.range_sum_many(los, his),
                                   reference.range_sum_many(los, his))

    def test_duplicate_indices_are_rejected(self):
        with pytest.raises(InvalidParameterError):
            BatchQueryEngine.from_arrays(
                16, np.array([1, 1], dtype=np.int64), np.array([1.0, 2.0]))


# --------------------------------------------------- columnar barrier concat
class TestColumnarConcat:
    def _block(self, keys, values, pair_size=12):
        return ColumnarBlock(np.asarray(keys, dtype=np.int64),
                             np.asarray(values), pair_size)

    def test_concat_preserves_stream_order(self):
        first = self._block([3, 1], [1.0, 2.0])
        second = self._block([2, 2], [3.0, 4.0])
        merged = ColumnarBlock.concat([first, second])
        np.testing.assert_array_equal(merged.keys, [3, 1, 2, 2])
        np.testing.assert_array_equal(merged.values, [1.0, 2.0, 3.0, 4.0])
        assert merged.pair_size_bytes == 12

    def test_concat_of_one_block_is_the_block_itself(self):
        block = self._block([1], [1.0])
        assert ColumnarBlock.concat([block]) is block

    def test_concat_rejects_empty_and_mixed_inputs(self):
        with pytest.raises(InvalidParameterError):
            ColumnarBlock.concat([])
        with pytest.raises(InvalidParameterError):
            ColumnarBlock.concat([self._block([1], [1.0], pair_size=12),
                                  self._block([2], [2.0], pair_size=16)])
        with pytest.raises(InvalidParameterError):
            ColumnarBlock.concat([self._block([1], [1.0]),
                                  self._block([2], [2])])  # float64 vs int64

    def test_split_by_partition_yields_views_over_one_routed_buffer(self):
        block = self._block([0, 1, 2, 3, 4, 5],
                            [0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
        ids = block.keys % 2
        parts = dict(block.split_by_partition(ids, 2))
        np.testing.assert_array_equal(parts[0].keys, [0, 2, 4])
        np.testing.assert_array_equal(parts[1].keys, [1, 3, 5])
        np.testing.assert_array_equal(parts[0].values, [0.0, 2.0, 4.0])
        np.testing.assert_array_equal(parts[1].values, [1.0, 3.0, 5.0])
        # Both sub-blocks are slices of the same routed buffer, not copies.
        assert parts[0].keys.base is not None
        assert parts[0].keys.base is parts[1].keys.base


# ------------------------------------------------------- on/off equivalence
class TestZeroCopyEquivalence:
    @pytest.mark.parametrize("data_plane", ["batch", "records"])
    @pytest.mark.parametrize("executor_name", ["serial", "parallel"])
    def test_results_bit_identical_with_and_without_zero_copy(
            self, executor_name, data_plane, tiny_dataset):
        runs = {}
        for zero_copy in (True, False):
            executor = (SerialExecutor() if executor_name == "serial"
                        else ParallelExecutor(max_workers=2))
            try:
                runs[zero_copy] = _run(lambda: SendV(U, K), tiny_dataset,
                                       executor, data_plane, zero_copy)
            finally:
                executor.close()
        _assert_identical(runs[True], runs[False])

    def test_build_checksums_identical_with_and_without_zero_copy(
            self, tiny_dataset):
        reports = {}
        for zero_copy in (True, False):
            service = SynopsisService(profile=RuntimeProfile(
                cluster=_cluster(tiny_dataset), seed=SEED,
                zero_copy=zero_copy))
            reports[zero_copy] = service.build(SendV(U, K), tiny_dataset)
        assert (reports[True].checksum_sha256
                == reports[False].checksum_sha256)
        assert (reports[True].result.histogram.coefficients
                == reports[False].result.histogram.coefficients)


class TestZeroCopyFlagPlumbing:
    def test_profile_spec_key_and_describe(self):
        assert RuntimeProfile.parse_overrides(
            "zero-copy=off") == {"zero_copy": False}
        assert RuntimeProfile.parse_overrides(
            "zero-copy=on") == {"zero_copy": True}
        with pytest.raises(InvalidParameterError):
            RuntimeProfile.parse_overrides("zero-copy=maybe")
        assert "zero-copy=off" in RuntimeProfile(zero_copy=False).describe()
        assert "zero-copy" not in RuntimeProfile(zero_copy=True).describe()

    def test_experiment_config_carries_the_flag_into_the_profile(self):
        # Regression: the CLI folds --profile keys into ExperimentConfig
        # fields, so the config must accept zero_copy and forward it — a
        # `--profile zero-copy=off` build used to raise TypeError here.
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig.quick().with_overrides(
            **RuntimeProfile.parse_overrides("zero-copy=off"))
        assert config.zero_copy is False
        assert config.build_profile().zero_copy_enabled is False
        assert ExperimentConfig.quick().build_profile().zero_copy is None

    def test_unset_flag_resolves_against_the_process_default(self):
        previous = set_zero_copy_default(False)
        try:
            assert RuntimeProfile().zero_copy_enabled is False
            set_zero_copy_default(True)
            assert RuntimeProfile().zero_copy_enabled is True
            assert RuntimeProfile(zero_copy=False).zero_copy_enabled is False
        finally:
            set_zero_copy_default(previous)
