"""Tests for the wavelet-domain GCS sketch (repro.sketches.wavelet)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequency import FrequencyVector
from repro.core.haar import haar_transform
from repro.core.topk_coefficients import top_k_from_dense
from repro.errors import SketchError
from repro.sketches.wavelet import WaveletGcsSketch


def _skewed_dense(u: int = 256, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = np.zeros(u)
    dense[rng.choice(u, size=30, replace=False)] = 5000.0 / np.arange(1, 31) ** 1.2
    return np.round(dense)


class TestWaveletGcsSketch:
    def test_update_key_and_frequency_vector_agree(self):
        dense = _skewed_dense()
        counts = {i + 1: float(v) for i, v in enumerate(dense) if v}
        a = WaveletGcsSketch(u=256, bytes_per_level=8192, seed=3)
        b = WaveletGcsSketch(u=256, bytes_per_level=8192, seed=3)
        for key, count in counts.items():
            a.update_key(key, count)
        b.update_frequency_vector(counts)
        for index in (1, 2, 10, 100, 256):
            assert a.estimate_coefficient(index) == pytest.approx(
                b.estimate_coefficient(index), abs=1e-6
            )

    def test_coefficient_estimates_track_true_transform(self):
        dense = _skewed_dense()
        sketch = WaveletGcsSketch(u=256, bytes_per_level=16 * 1024, seed=5)
        sketch.update_frequency_vector({i + 1: float(v) for i, v in enumerate(dense) if v})
        true = haar_transform(dense)
        top_true = top_k_from_dense(true, 5)
        for index, value in top_true.items():
            assert sketch.estimate_coefficient(index) == pytest.approx(value, rel=0.25)

    def test_top_k_overlaps_true_top_k(self):
        dense = _skewed_dense(seed=2)
        sketch = WaveletGcsSketch(u=256, bytes_per_level=16 * 1024, seed=7)
        sketch.update_frequency_vector({i + 1: float(v) for i, v in enumerate(dense) if v})
        found = sketch.top_k(10)
        true = top_k_from_dense(haar_transform(dense), 10)
        assert len(set(found) & set(true)) >= 5

    def test_merge_matches_sketch_of_combined_data(self):
        dense = _skewed_dense(seed=4)
        half_a = {i + 1: float(v) for i, v in enumerate(dense[:128]) if v}
        half_b = {i + 129: float(v) for i, v in enumerate(dense[128:]) if v}
        a = WaveletGcsSketch(u=256, bytes_per_level=8192, seed=9)
        b = WaveletGcsSketch(u=256, bytes_per_level=8192, seed=9)
        union = WaveletGcsSketch(u=256, bytes_per_level=8192, seed=9)
        a.update_frequency_vector(half_a)
        b.update_frequency_vector(half_b)
        union.update_frequency_vector({**half_a, **half_b})
        a.merge_in_place(b)
        for index in (1, 2, 3, 64, 200):
            assert a.estimate_coefficient(index) == pytest.approx(
                union.estimate_coefficient(index), abs=1e-6
            )
        assert a.key_updates == union.key_updates

    def test_merge_rejects_incompatible(self):
        a = WaveletGcsSketch(u=256, seed=1)
        b = WaveletGcsSketch(u=256, seed=2)
        c = WaveletGcsSketch(u=512, seed=1)
        with pytest.raises(SketchError):
            a.merge_in_place(b)
        with pytest.raises(SketchError):
            a.merge_in_place(c)

    def test_linear_in_counts_like_frequency_vectors(self):
        """Sketching split-local vectors and merging equals sketching the global vector."""
        vector_a = FrequencyVector(128, {1: 10.0, 5: 3.0})
        vector_b = FrequencyVector(128, {5: 2.0, 100: 7.0})
        merged_vector = vector_a.merge(vector_b)
        sketch_a = WaveletGcsSketch(u=128, seed=4)
        sketch_b = WaveletGcsSketch(u=128, seed=4)
        sketch_union = WaveletGcsSketch(u=128, seed=4)
        sketch_a.update_frequency_vector(vector_a.counts)
        sketch_b.update_frequency_vector(vector_b.counts)
        sketch_union.update_frequency_vector(merged_vector.counts)
        sketch_a.merge_in_place(sketch_b)
        for index in (1, 2, 64, 128):
            assert sketch_a.estimate_coefficient(index) == pytest.approx(
                sketch_union.estimate_coefficient(index), abs=1e-6
            )

    def test_zero_count_update_is_noop(self):
        sketch = WaveletGcsSketch(u=64, seed=1)
        sketch.update_key(5, 0.0)
        assert sketch.key_updates == 0
        assert sketch.nonzero_entries() == 0

    def test_estimate_validation(self):
        sketch = WaveletGcsSketch(u=64, seed=1)
        with pytest.raises(SketchError):
            sketch.estimate_coefficient(0)
        with pytest.raises(SketchError):
            sketch.estimate_coefficient(65)

    def test_size_reporting(self):
        sketch = WaveletGcsSketch(u=64, bytes_per_level=2048, seed=1)
        sketch.update_key(3, 5.0)
        assert sketch.serialized_size_bytes() == sketch.nonzero_entries() * 12
        assert sketch.total_cells > 0
