"""Tests for the experiment harness: config, runner and reporting."""

from __future__ import annotations

import warnings

import pytest

from repro.errors import InvalidParameterError
from repro.experiments.config import PAPER_REFERENCE_BYTES, ExperimentConfig
from repro.experiments.reporting import FigureTable, format_value
from repro.experiments.runner import ExperimentMeasurement, run_algorithms, standard_algorithms


class TestExperimentConfig:
    def test_defaults_are_consistent(self):
        config = ExperimentConfig()
        assert config.u & (config.u - 1) == 0
        assert config.reference_bytes == PAPER_REFERENCE_BYTES

    def test_build_dataset_respects_parameters(self, quick_config):
        dataset = quick_config.build_dataset()
        assert dataset.n == quick_config.n
        assert dataset.u == quick_config.u
        assert dataset.record_size_bytes == quick_config.record_size_bytes

    def test_build_worldcup_dataset(self, quick_config):
        dataset = quick_config.build_worldcup_dataset()
        assert dataset.n == quick_config.n
        assert dataset.u == quick_config.u
        assert dataset.record_size_bytes == 40

    def test_split_size_gives_target_split_count(self, quick_config):
        dataset = quick_config.build_dataset()
        split_size = quick_config.split_size_bytes(dataset)
        splits = -(-dataset.size_bytes // split_size)
        assert abs(splits - quick_config.target_splits) <= 1

    def test_scale_factor(self, quick_config):
        dataset = quick_config.build_dataset()
        expected = PAPER_REFERENCE_BYTES / dataset.size_bytes
        assert quick_config.scale_factor(dataset) == pytest.approx(expected, rel=1e-6)

    def test_build_cluster_scales_work_rates_but_not_overheads(self, quick_config):
        dataset = quick_config.build_dataset()
        scaled = quick_config.build_cluster(dataset)
        unscaled = quick_config.unscaled_cluster(dataset)
        factor = quick_config.scale_factor(dataset)
        assert unscaled.effective_bandwidth_bytes_per_s == pytest.approx(
            scaled.effective_bandwidth_bytes_per_s * factor, rel=1e-6
        )
        assert scaled.job_overhead_s == unscaled.job_overhead_s
        assert scaled.num_workers == unscaled.num_workers == 16

    def test_bandwidth_fraction_override(self, quick_config):
        dataset = quick_config.build_dataset()
        full = quick_config.build_cluster(dataset, bandwidth_fraction=1.0)
        half = quick_config.build_cluster(dataset, bandwidth_fraction=0.5)
        assert full.effective_bandwidth_bytes_per_s == pytest.approx(
            2 * half.effective_bandwidth_bytes_per_s
        )

    def test_with_overrides(self, quick_config):
        changed = quick_config.with_overrides(alpha=1.4, k=10)
        assert changed.alpha == 1.4 and changed.k == 10
        assert quick_config.alpha != 1.4 or quick_config.k != 10

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            ExperimentConfig(n=0)
        with pytest.raises(InvalidParameterError):
            ExperimentConfig(epsilon=0)


class TestRunner:
    def test_standard_algorithms_are_the_papers_five(self, quick_config):
        algorithms = standard_algorithms(quick_config)
        assert [algorithm.name for algorithm in algorithms] == [
            "Send-V", "H-WTopk", "Send-Sketch", "Improved-S", "TwoLevel-S",
        ]

    def test_standard_algorithms_overrides(self, quick_config):
        algorithms = standard_algorithms(quick_config, u=2048, k=7, epsilon=0.05)
        assert all(algorithm.u == 2048 and algorithm.k == 7 for algorithm in algorithms)

    def test_run_algorithms_produces_one_measurement_per_algorithm(self, quick_config):
        dataset = quick_config.build_dataset()
        cluster = quick_config.build_cluster(dataset)
        algorithms = standard_algorithms(quick_config)[:2]  # Send-V and H-WTopk
        measurements = run_algorithms(dataset, algorithms, cluster,
                                      profile=quick_config.build_profile())
        assert [m.algorithm for m in measurements] == ["Send-V", "H-WTopk"]
        for measurement in measurements:
            assert measurement.communication_bytes > 0
            assert measurement.simulated_time_s > 0
            assert measurement.sse >= 0
            assert isinstance(measurement, ExperimentMeasurement)

    def test_exact_methods_have_equal_sse(self, quick_config):
        dataset = quick_config.build_dataset()
        cluster = quick_config.build_cluster(dataset)
        reference = dataset.frequency_vector()
        measurements = run_algorithms(dataset, standard_algorithms(quick_config)[:2], cluster,
                                      reference=reference,
                                      profile=quick_config.build_profile())
        assert measurements[0].sse == pytest.approx(measurements[1].sse, rel=1e-9)

    def test_legacy_kwargs_warn_once_and_match_profile(self, quick_config):
        """Satellite: seed=/executor=/data_plane= fold through the deprecation
        shim (one warning naming RuntimeProfile) instead of being ignored."""
        dataset = quick_config.build_dataset()
        cluster = quick_config.build_cluster(dataset)
        algorithms = standard_algorithms(quick_config)[:1]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = run_algorithms(dataset, algorithms, cluster,
                                    seed=quick_config.seed, executor="serial",
                                    data_plane="batch")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "RuntimeProfile" in str(deprecations[0].message)

        via_profile = run_algorithms(dataset, algorithms, cluster,
                                     profile=quick_config.build_profile())
        assert legacy[0].communication_bytes == via_profile[0].communication_bytes
        assert legacy[0].simulated_time_s == via_profile[0].simulated_time_s
        assert legacy[0].sse == via_profile[0].sse

    def test_mixing_profile_and_legacy_kwargs_raises(self, quick_config):
        dataset = quick_config.build_dataset()
        with pytest.warns(DeprecationWarning, match="RuntimeProfile"):
            with pytest.raises(InvalidParameterError, match="not both"):
                run_algorithms(dataset, standard_algorithms(quick_config)[:1],
                               seed=3, profile=quick_config.build_profile())


class TestReporting:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(0.5) == "0.500"
        assert format_value(1.23e9) == "1.230e+09"
        assert format_value(0.0) == "0"
        assert format_value(True) == "True"
        assert format_value("x") == "x"

    def test_add_row_and_columns(self):
        table = FigureTable(figure="F", title="t", columns=["a", "b"])
        table.add_row(a=1, b=2)
        table.add_row(a=3)
        assert len(table) == 2
        assert table.column("a") == [1, 3]
        assert table.rows[1]["b"] == ""

    def test_series_grouping(self):
        table = FigureTable(figure="F", title="t", columns=["x", "algorithm", "y"])
        table.add_row(x=1, algorithm="A", y=10)
        table.add_row(x=2, algorithm="A", y=20)
        table.add_row(x=1, algorithm="B", y=5)
        series = table.series("x", "y")
        assert series == {"A": [(1, 10), (2, 20)], "B": [(1, 5)]}

    def test_filter(self):
        table = FigureTable(figure="F", title="t", columns=["x", "algorithm"])
        table.add_row(x=1, algorithm="A")
        table.add_row(x=2, algorithm="B")
        assert table.filter(algorithm="B") == [{"x": 2, "algorithm": "B"}]

    def test_format_and_markdown_render(self):
        table = FigureTable(figure="Figure 1", title="demo", columns=["x", "y"],
                            notes=["a note"])
        table.add_row(x=1, y=2.0)
        text = table.format()
        assert "Figure 1" in text and "a note" in text and "x" in text
        markdown = table.to_markdown()
        assert markdown.startswith("### Figure 1")
        assert "| x | y |" in markdown

    def test_format_empty_table(self):
        table = FigureTable(figure="F", title="t", columns=["x"])
        assert "x" in table.format()
