"""Tests for the Haar wavelet transforms (repro.core.haar)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.haar import (
    basis_value,
    coefficient_level,
    coefficient_support,
    coefficients_for_key,
    energy,
    haar_transform,
    inverse_haar_transform,
    sparse_haar_transform,
    sparse_inverse_contribution,
    validate_domain,
    wavelet_basis_vector,
)
from repro.errors import InvalidDomainError, KeyOutOfDomainError


# ------------------------------------------------------------------ validation
class TestValidateDomain:
    def test_accepts_powers_of_two(self):
        assert validate_domain(1) == 0
        assert validate_domain(2) == 1
        assert validate_domain(1024) == 10

    @pytest.mark.parametrize("u", [0, -4, 3, 6, 1000])
    def test_rejects_non_powers_of_two(self, u):
        with pytest.raises(InvalidDomainError):
            validate_domain(u)


# ----------------------------------------------------------------- dense paths
class TestHaarTransform:
    def test_paper_example_figure_1(self):
        """The signal from Figure 1 of the paper: unnormalised tree values match."""
        v = np.array([3, 5, 10, 8, 2, 2, 10, 14], dtype=float)
        w = haar_transform(v)
        # Normalised coefficients are the tree values times sqrt(u / 2^level).
        assert w[0] == pytest.approx(6.75 * math.sqrt(8))          # total average
        assert w[1] == pytest.approx(0.25 * math.sqrt(8))          # level-0 detail
        assert w[2] == pytest.approx(2.5 * math.sqrt(4))           # level-1 details
        assert w[3] == pytest.approx(5.0 * math.sqrt(4))
        assert w[4] == pytest.approx(1.0 * math.sqrt(2))           # level-2 details
        assert w[5] == pytest.approx(-1.0 * math.sqrt(2))
        assert w[6] == pytest.approx(0.0)
        assert w[7] == pytest.approx(2.0 * math.sqrt(2))

    def test_roundtrip(self):
        v = np.array([3, 5, 10, 8, 2, 2, 10, 14], dtype=float)
        assert np.allclose(inverse_haar_transform(haar_transform(v)), v)

    def test_energy_preservation(self):
        v = np.arange(16, dtype=float)
        w = haar_transform(v)
        assert np.dot(v, v) == pytest.approx(np.dot(w, w))

    def test_single_element_domain(self):
        v = np.array([5.0])
        w = haar_transform(v)
        assert w[0] == pytest.approx(5.0)
        assert inverse_haar_transform(w)[0] == pytest.approx(5.0)

    def test_constant_signal_has_single_nonzero_coefficient(self):
        v = np.full(32, 7.0)
        w = haar_transform(v)
        assert w[0] == pytest.approx(7.0 * 32 / math.sqrt(32))
        assert np.allclose(w[1:], 0.0)

    def test_rejects_non_power_of_two_length(self):
        with pytest.raises(InvalidDomainError):
            haar_transform(np.ones(6))

    def test_matches_basis_vector_dot_products(self):
        rng = np.random.default_rng(0)
        v = rng.integers(0, 20, size=16).astype(float)
        w = haar_transform(v)
        for index in range(1, 17):
            assert w[index - 1] == pytest.approx(float(np.dot(v, wavelet_basis_vector(index, 16))))

    def test_linearity(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=32)
        b = rng.normal(size=32)
        assert np.allclose(haar_transform(a + 2 * b), haar_transform(a) + 2 * haar_transform(b))


class TestInverseHaarTransform:
    def test_unit_coefficient_reconstructs_basis_vector(self):
        u = 16
        for index in (1, 2, 5, 16):
            w = np.zeros(u)
            w[index - 1] = 1.0
            assert np.allclose(inverse_haar_transform(w), wavelet_basis_vector(index, u))

    def test_rejects_bad_length(self):
        with pytest.raises(InvalidDomainError):
            inverse_haar_transform(np.ones(12))


# -------------------------------------------------------------- property tests
class TestHaarProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=8, max_size=8))
    @settings(max_examples=50)
    def test_roundtrip_random_vectors(self, values):
        v = np.array(values)
        assert np.allclose(inverse_haar_transform(haar_transform(v)), v, atol=1e-6)

    @given(st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
                    min_size=16, max_size=16))
    @settings(max_examples=50)
    def test_energy_preserved_random_vectors(self, values):
        v = np.array(values)
        w = haar_transform(v)
        assert float(np.dot(v, v)) == pytest.approx(float(np.dot(w, w)), rel=1e-9, abs=1e-6)

    @given(st.dictionaries(st.integers(min_value=1, max_value=64),
                           st.integers(min_value=1, max_value=1000),
                           min_size=0, max_size=30))
    @settings(max_examples=50)
    def test_sparse_matches_dense(self, counts):
        u = 64
        dense = np.zeros(u)
        for key, count in counts.items():
            dense[key - 1] = count
        expected = haar_transform(dense)
        sparse = sparse_haar_transform(counts, u)
        for index in range(1, u + 1):
            assert sparse.get(index, 0.0) == pytest.approx(expected[index - 1], abs=1e-9)


# --------------------------------------------------------------- sparse paths
class TestSparseHaarTransform:
    def test_empty_input(self):
        assert sparse_haar_transform({}, 64) == {}

    def test_ignores_zero_counts(self):
        assert sparse_haar_transform({5: 0}, 64) == {}

    def test_single_key_touches_log_u_plus_one_coefficients(self):
        u = 64
        result = sparse_haar_transform({17: 3.0}, u)
        assert len(result) == int(math.log2(u)) + 1

    def test_rejects_out_of_domain_key(self):
        with pytest.raises(KeyOutOfDomainError):
            sparse_haar_transform({65: 1.0}, 64)

    def test_sparse_inverse_contribution_matches_reconstruction(self):
        u = 32
        counts = {1: 4.0, 7: 2.0, 30: 9.0}
        coefficients = sparse_haar_transform(counts, u)
        dense = np.zeros(u)
        for index, value in coefficients.items():
            dense[index - 1] = value
        reconstructed = inverse_haar_transform(dense)
        for key in range(1, u + 1):
            assert sparse_inverse_contribution(coefficients, key, u) == pytest.approx(
                reconstructed[key - 1], abs=1e-9
            )


# ------------------------------------------------------------- basis structure
class TestBasisStructure:
    def test_basis_vectors_are_orthonormal(self):
        u = 16
        basis = np.array([wavelet_basis_vector(i, u) for i in range(1, u + 1)])
        gram = basis @ basis.T
        assert np.allclose(gram, np.eye(u), atol=1e-9)

    def test_basis_value_matches_materialised_vector(self):
        u = 32
        for index in (1, 2, 3, 10, 32):
            vector = wavelet_basis_vector(index, u)
            for key in range(1, u + 1):
                assert basis_value(index, key, u) == pytest.approx(vector[key - 1])

    def test_coefficient_level(self):
        u = 16
        assert coefficient_level(1, u) == 0
        assert coefficient_level(2, u) == 0
        assert coefficient_level(3, u) == 1
        assert coefficient_level(5, u) == 2
        assert coefficient_level(9, u) == 3

    def test_coefficient_support_partitions_domain_per_level(self):
        u = 16
        for level in range(1, 4):
            supports = [
                coefficient_support(2 ** level + offset + 1, u) for offset in range(2 ** level)
            ]
            covered = []
            for lo, hi in supports:
                covered.extend(range(lo, hi + 1))
            assert sorted(covered) == list(range(1, u + 1))

    def test_coefficients_for_key_is_the_root_to_leaf_path(self):
        u = 16
        path = coefficients_for_key(5, u)
        assert path[0] == 1
        assert len(path) == int(math.log2(u)) + 1
        for index in path[1:]:
            lo, hi = coefficient_support(index, u)
            assert lo <= 5 <= hi

    def test_out_of_range_queries_raise(self):
        with pytest.raises(KeyOutOfDomainError):
            coefficient_support(0, 16)
        with pytest.raises(KeyOutOfDomainError):
            coefficient_level(17, 16)
        with pytest.raises(KeyOutOfDomainError):
            coefficients_for_key(0, 16)
        with pytest.raises(KeyOutOfDomainError):
            basis_value(1, 17, 16)
        with pytest.raises(KeyOutOfDomainError):
            wavelet_basis_vector(17, 16)


class TestEnergyHelper:
    def test_energy_of_list(self):
        assert energy([3.0, 4.0]) == pytest.approx(25.0)

    def test_energy_of_array(self):
        assert energy(np.array([1.0, 2.0, 2.0])) == pytest.approx(9.0)
