"""Tests for the paper's signed, magnitude-ranked TPUT variant (repro.topk.signed_tput)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.topk.signed_tput import magnitude_lower_bound, signed_tput_topk
from repro.topk.tput import tput_topk


def brute_force_magnitude_topk(node_scores, k):
    totals = {}
    for scores in node_scores:
        for item, score in scores.items():
            totals[item] = totals.get(item, 0.0) + score
    ranked = sorted(totals.items(), key=lambda pair: (-abs(pair[1]), pair[0]))
    return dict(ranked[:k])


class TestMagnitudeLowerBound:
    def test_same_sign_bounds(self):
        assert magnitude_lower_bound(10.0, 4.0) == 4.0
        assert magnitude_lower_bound(-4.0, -10.0) == 4.0

    def test_straddling_zero_gives_zero(self):
        assert magnitude_lower_bound(5.0, -3.0) == 0.0

    def test_tiny_floating_point_inversion_is_tolerated(self):
        value = 1307.6172151092228
        assert magnitude_lower_bound(value, value + 2e-13) == pytest.approx(value)

    def test_real_inversion_raises(self):
        with pytest.raises(InvalidParameterError):
            magnitude_lower_bound(1.0, 2.0)


class TestSignedTputCorrectness:
    def test_positive_and_negative_scores(self):
        nodes = [
            {1: 10.0, 2: -8.0, 3: 1.0},
            {1: -2.0, 2: -7.0, 4: 3.0},
            {3: 0.5, 4: 2.0, 5: -1.0},
        ]
        result = signed_tput_topk(nodes, 2)
        assert result.top_k == brute_force_magnitude_topk(nodes, 2)
        assert set(result.top_k) == {2, 1}  # aggregate -15 and +8

    def test_most_negative_item_wins(self):
        nodes = [{1: -50.0, 2: 20.0}, {1: -40.0, 2: 25.0}]
        result = signed_tput_topk(nodes, 1)
        assert result.top_k == {1: -90.0}

    def test_cancellation_across_nodes(self):
        """An item huge at every node but cancelling to ~0 must not make the top-k."""
        nodes = [{1: 1000.0, 2: 30.0}, {1: -999.0, 2: 25.0}]
        result = signed_tput_topk(nodes, 1)
        assert set(result.top_k) == {2}

    def test_matches_classic_tput_on_non_negative_inputs(self):
        rng = np.random.default_rng(1)
        nodes = []
        for _ in range(8):
            items = rng.choice(200, size=60, replace=False)
            nodes.append({int(item): float(rng.integers(1, 100)) for item in items})
        signed = signed_tput_topk(nodes, 5)
        classic = tput_topk(nodes, 5)
        assert sorted(signed.top_k.values(), reverse=True) == pytest.approx(
            sorted(classic.top_k.values(), reverse=True)
        )

    def test_thresholds_are_reported_and_ordered(self):
        rng = np.random.default_rng(2)
        nodes = [
            {int(i): float(rng.normal(scale=50)) for i in rng.choice(300, size=100, replace=False)}
            for _ in range(10)
        ]
        result = signed_tput_topk(nodes, 10)
        t1, t2 = result.thresholds
        assert t1 >= 0
        assert t2 >= t1  # refined threshold can only improve
        assert result.candidate_set_size >= 10

    def test_communication_is_reported_per_round(self):
        nodes = [{1: 5.0, 2: -1.0}, {1: 4.0, 3: 2.0}]
        result = signed_tput_topk(nodes, 1)
        assert len(result.pairs_sent_per_round) == 3
        assert result.total_pairs_sent == sum(result.pairs_sent_per_round)

    def test_prunes_communication_on_skewed_data(self):
        """With more than k globally heavy items, rounds 2 and 3 prune most pairs."""
        rng = np.random.default_rng(3)
        heavy = {7: 500.0, 13: -450.0, 21: 380.0, 40: -320.0, 55: 300.0,
                 81: 280.0, 90: -260.0, 120: 240.0}
        nodes = []
        for _ in range(20):
            scores = {item: float(rng.normal(scale=1.0)) for item in range(400)}
            for item, value in heavy.items():
                scores[item] = value + float(rng.normal())
            nodes.append(scores)
        result = signed_tput_topk(nodes, 5)
        assert set(brute_force_magnitude_topk(nodes, 5)) == set(result.top_k)
        # The heavy items dominate the thresholds, so the noise items are pruned
        # and total communication stays far below shipping every local score.
        assert result.total_pairs_sent < 0.25 * 20 * 400
        assert result.thresholds[0] > 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            signed_tput_topk([], 3)
        with pytest.raises(InvalidParameterError):
            signed_tput_topk([{1: 1.0}], 0)

    @given(st.lists(st.dictionaries(st.integers(1, 30),
                                    st.floats(-100, 100, allow_nan=False),
                                    min_size=1, max_size=12),
                    min_size=1, max_size=6),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=60)
    def test_matches_brute_force_property(self, nodes, k):
        result = signed_tput_topk(nodes, k)
        expected = brute_force_magnitude_topk(nodes, k)
        totals = brute_force_magnitude_topk(nodes, 10**6)
        for item, score in result.top_k.items():
            assert score == pytest.approx(totals[item], abs=1e-9)
        assert sorted((abs(v) for v in result.top_k.values()), reverse=True) == pytest.approx(
            sorted((abs(v) for v in expected.values()), reverse=True), abs=1e-9
        )
