"""Determinism suite: scheduled concurrent execution must be bit-identical to
sequential execution.

The cluster scheduler interleaves tasks from many job plans on one shared
map/reduce slot pool.  For every one of the seven algorithms, across both
executors and both data planes, a concurrently scheduled batch must reproduce
the sequential runs exactly: same histogram coefficients, same merged counter
totals, same per-round outputs and shuffle bytes.  Slot starvation (a cluster
with a single map slot and a single reduce slot) and admission throttling
(``max_concurrent_jobs``) must not change a bit either — they only reorder
*when* tasks run, never what they compute or how their results merge.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    BasicSampling,
    HWTopk,
    ImprovedSampling,
    SendCoef,
    SendSketch,
    SendV,
    TwoLevelSampling,
)
from repro.errors import SchedulerError
from repro.mapreduce.cluster import ClusterSpec, MachineSpec
from repro.mapreduce.executor import ParallelExecutor, SerialExecutor
from repro.mapreduce.hdfs import HDFS
from repro.mapreduce.runtime import JobRunner
from repro.mapreduce.scheduler import ClusterScheduler
from repro.mapreduce.state import StateStore
from repro.experiments.runner import run_algorithms
from repro.service import RuntimeProfile

U = 256
K = 10
EPSILON = 0.02
SEED = 7
INPUT = "/data/input"

# All seven algorithms: the whole suite is admitted as ONE scheduled batch and
# compared against seven sequential runs.
def seven_algorithms():
    return [
        SendV(U, K),
        SendCoef(U, K),
        HWTopk(U, K),
        SendSketch(U, K, bytes_per_level=1024),
        BasicSampling(U, K, epsilon=EPSILON),
        ImprovedSampling(U, K, epsilon=EPSILON),
        TwoLevelSampling(U, K, epsilon=EPSILON),
    ]


@pytest.fixture(scope="module")
def parallel_executor():
    executor = ParallelExecutor(max_workers=4)
    yield executor
    executor.close()


def _executor_for(name, parallel_executor):
    return parallel_executor if name == "parallel" else SerialExecutor()


def _sequential(dataset, cluster, executor, data_plane):
    hdfs = HDFS()
    dataset.to_hdfs(hdfs, INPUT)
    profile = RuntimeProfile(cluster=cluster, seed=SEED, executor=executor,
                             data_plane=data_plane)
    return [algorithm.run(hdfs, INPUT, profile=profile)
            for algorithm in seven_algorithms()]


def _scheduled(dataset, cluster, executor, data_plane,
               max_concurrent_jobs=None):
    hdfs = HDFS()
    dataset.to_hdfs(hdfs, INPUT)
    profile = RuntimeProfile(cluster=cluster, seed=SEED, executor=executor,
                             data_plane=data_plane)
    algorithms = seven_algorithms()
    entries = []
    for algorithm in algorithms:
        runner = JobRunner(hdfs, cluster=cluster, state_store=StateStore(),
                           seed=SEED, executor=executor, data_plane=data_plane)
        entries.append((algorithm.create_plan(INPUT), runner))
    scheduler = ClusterScheduler.for_cluster(
        cluster, executor, max_concurrent_jobs=max_concurrent_jobs)
    outcomes = scheduler.run(entries)
    results = [algorithm.assemble_result(outcome, profile)
               for algorithm, outcome in zip(algorithms, outcomes)]
    return results, scheduler.last_stats


def _assert_batch_identical(sequential, scheduled):
    assert len(sequential) == len(scheduled)
    for expected, actual in zip(sequential, scheduled):
        assert expected.algorithm == actual.algorithm
        # The histogram: same coefficient indices and exactly equal values.
        assert expected.histogram.coefficients == actual.histogram.coefficients
        # Every counter total, exactly (float equality is intentional: phase
        # barriers merge in task order under both execution modes).
        assert expected.counters.as_dict() == actual.counters.as_dict()
        # Per-round results: outputs in the same order, same communication.
        assert expected.num_rounds == actual.num_rounds
        for expected_round, actual_round in zip(expected.rounds, actual.rounds):
            assert expected_round.output == actual_round.output
            assert expected_round.shuffle_bytes == actual_round.shuffle_bytes
            assert expected_round.counters.as_dict() == actual_round.counters.as_dict()
        assert expected.communication_bytes == actual.communication_bytes
        assert expected.simulated_time_s == actual.simulated_time_s


@pytest.mark.parametrize("executor_name", ["serial", "parallel"])
@pytest.mark.parametrize("data_plane", ["batch", "records"])
def test_scheduled_batch_matches_sequential_bit_for_bit(
        executor_name, data_plane, small_dataset, small_cluster,
        parallel_executor):
    """All seven algorithms, interleaved as one batch == seven sequential runs."""
    executor = _executor_for(executor_name, parallel_executor)
    sequential = _sequential(small_dataset, small_cluster, executor, data_plane)
    scheduled, stats = _scheduled(small_dataset, small_cluster, executor,
                                  data_plane)
    _assert_batch_identical(sequential, scheduled)
    # The batch genuinely interleaved: all seven plans were active at once.
    assert stats.jobs == 7
    assert stats.peak_active_jobs == 7
    assert stats.rounds == sum(result.num_rounds for result in sequential)


@pytest.mark.parametrize("slots", [(1, 1), (1, 4), (4, 1)])
def test_slot_starvation_does_not_change_results(slots, small_dataset):
    """A cluster with one map slot and/or one reduce slot schedules every
    task through a single-slot bottleneck — results must not move a bit."""
    map_slots, reduce_slots = slots
    cluster = ClusterSpec(
        machines=[MachineSpec(name="only", map_slots=map_slots,
                              reduce_slots=reduce_slots)],
        split_size_bytes=max(4, small_dataset.size_bytes // 6),
    )
    executor = SerialExecutor()
    sequential = _sequential(small_dataset, cluster, executor, "batch")
    scheduled, stats = _scheduled(small_dataset, cluster, executor, "batch")
    _assert_batch_identical(sequential, scheduled)
    assert stats.peak_map_slots_in_use <= map_slots
    assert stats.peak_reduce_slots_in_use <= reduce_slots


def test_admission_bound_limits_active_jobs(small_dataset, small_cluster):
    sequential = _sequential(small_dataset, small_cluster, SerialExecutor(),
                             "batch")
    scheduled, stats = _scheduled(small_dataset, small_cluster,
                                  SerialExecutor(), "batch",
                                  max_concurrent_jobs=2)
    _assert_batch_identical(sequential, scheduled)
    assert stats.peak_active_jobs <= 2


def test_run_algorithms_concurrent_matches_sequential(small_dataset,
                                                      small_cluster):
    """The harness-level entry point: one scheduled batch == the sequential
    measurement loop, for the full seven-algorithm suite."""
    algorithms = seven_algorithms()
    reference = small_dataset.frequency_vector()
    profile = RuntimeProfile(cluster=small_cluster, seed=SEED)
    sequential = run_algorithms(small_dataset, algorithms, reference=reference,
                                profile=profile)
    concurrent = run_algorithms(small_dataset, seven_algorithms(),
                                reference=reference, profile=profile,
                                concurrent_jobs=7)
    assert len(sequential) == len(concurrent)
    for expected, actual in zip(sequential, concurrent):
        assert expected.algorithm == actual.algorithm
        assert expected.communication_bytes == actual.communication_bytes
        assert expected.simulated_time_s == actual.simulated_time_s
        assert expected.sse == actual.sse
        assert expected.num_rounds == actual.num_rounds


def test_profile_concurrent_jobs_drives_the_batch(small_dataset, small_cluster):
    """concurrent_jobs on the profile (e.g. from --profile parsing) is enough."""
    reference = small_dataset.frequency_vector()
    base = RuntimeProfile(cluster=small_cluster, seed=SEED)
    sequential = run_algorithms(small_dataset, [SendV(U, K), HWTopk(U, K)],
                                reference=reference, profile=base)
    concurrent = run_algorithms(small_dataset, [SendV(U, K), HWTopk(U, K)],
                                reference=reference,
                                profile=base.with_overrides(concurrent_jobs=2))
    for expected, actual in zip(sequential, concurrent):
        assert expected.communication_bytes == actual.communication_bytes
        assert expected.sse == actual.sse


def test_scheduler_rejects_shared_runners(small_dataset, small_cluster):
    hdfs = HDFS()
    small_dataset.to_hdfs(hdfs, INPUT)
    runner = JobRunner(hdfs, cluster=small_cluster, state_store=StateStore())
    entries = [(SendV(U, K).create_plan(INPUT), runner),
               (SendCoef(U, K).create_plan(INPUT), runner)]
    scheduler = ClusterScheduler.for_cluster(small_cluster, SerialExecutor())
    with pytest.raises(SchedulerError, match="own JobRunner"):
        scheduler.run(entries)


def test_scheduler_empty_batch_is_a_noop(small_cluster):
    scheduler = ClusterScheduler.for_cluster(small_cluster, SerialExecutor())
    assert scheduler.run([]) == []
    assert scheduler.last_stats.jobs == 0


def test_task_failures_propagate_and_cancel(small_dataset, small_cluster,
                                            parallel_executor):
    """A failing job in the batch propagates its error; the executor survives."""
    from repro.errors import ReproError

    hdfs = HDFS()
    small_dataset.to_hdfs(hdfs, INPUT)
    # Domain 16 is smaller than the dataset's keys: mappers raise.
    bad = SendV(4, 2)
    entries = []
    for algorithm in (SendV(U, K), bad):
        runner = JobRunner(hdfs, cluster=small_cluster, state_store=StateStore(),
                           seed=SEED, executor=parallel_executor)
        entries.append((algorithm.create_plan(INPUT), runner))
    scheduler = ClusterScheduler.for_cluster(small_cluster, parallel_executor)
    with pytest.raises(ReproError):
        scheduler.run(entries)
    # The pool is still usable afterwards.
    assert parallel_executor.run_tasks([], slots=2) == []
