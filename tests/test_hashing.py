"""Tests for the k-wise independent hash families (repro.sketches.hashing)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SketchError
from repro.sketches.hashing import MERSENNE_PRIME, FourWiseHash, PairwiseHash, PolynomialHash


class TestPolynomialHash:
    def test_deterministic_given_coefficients(self):
        hash_function = PolynomialHash(degree=1, coefficients=[3, 11])
        assert hash_function(7) == (3 * 7 + 11) % MERSENNE_PRIME
        assert hash_function(7) == hash_function(7)

    def test_values_within_field(self):
        hash_function = PairwiseHash(rng=np.random.default_rng(0))
        for x in (0, 1, 123456, MERSENNE_PRIME + 5):
            assert 0 <= hash_function(x) < MERSENNE_PRIME

    def test_bucket_range(self):
        hash_function = PairwiseHash(rng=np.random.default_rng(1))
        buckets = {hash_function.bucket(x, 16) for x in range(1000)}
        assert buckets <= set(range(16))
        assert len(buckets) > 8  # spreads over most buckets

    def test_sign_is_plus_minus_one(self):
        hash_function = FourWiseHash(rng=np.random.default_rng(2))
        signs = {hash_function.sign(x) for x in range(100)}
        assert signs == {-1, 1}

    def test_vectorised_matches_scalar(self):
        hash_function = FourWiseHash(rng=np.random.default_rng(3))
        xs = np.arange(0, 500, dtype=np.int64)
        buckets = hash_function.bucket_array(xs, 32)
        signs = hash_function.sign_array(xs)
        values = hash_function.evaluate_array(xs)
        for x in (0, 1, 17, 499):
            assert buckets[x] == hash_function.bucket(int(x), 32)
            assert signs[x] == hash_function.sign(int(x))
            assert values[x] == hash_function(int(x))

    def test_coefficient_count_validation(self):
        with pytest.raises(SketchError):
            PolynomialHash(degree=3, coefficients=[1, 2])
        with pytest.raises(SketchError):
            PolynomialHash(degree=0)

    def test_bucket_validation(self):
        hash_function = PairwiseHash(rng=np.random.default_rng(4))
        with pytest.raises(SketchError):
            hash_function.bucket(3, 0)
        with pytest.raises(SketchError):
            hash_function.bucket_array(np.array([1]), 0)

    def test_leading_coefficient_never_zero(self):
        hash_function = PolynomialHash(degree=1, coefficients=[0, 5])
        assert hash_function.coefficients[0] == 1

    def test_pairwise_independence_statistics(self):
        """Collision probability over random linear hashes is close to 1/buckets."""
        rng = np.random.default_rng(5)
        buckets = 64
        collisions = 0
        trials = 400
        for _ in range(trials):
            hash_function = PairwiseHash(rng=rng)
            if hash_function.bucket(12, buckets) == hash_function.bucket(77, buckets):
                collisions += 1
        assert collisions / trials < 4.0 / buckets

    @given(st.integers(min_value=0, max_value=2**40), st.integers(min_value=0, max_value=2**40))
    @settings(max_examples=50)
    def test_same_input_same_output(self, x, y):
        hash_function = FourWiseHash(coefficients=[5, 7, 11, 13])
        if x == y:
            assert hash_function(x) == hash_function(y)
        assert 0 <= hash_function(x) < MERSENNE_PRIME


class TestSignBalance:
    def test_signs_are_roughly_balanced(self):
        hash_function = FourWiseHash(rng=np.random.default_rng(6))
        signs = hash_function.sign_array(np.arange(10_000))
        assert abs(int(signs.sum())) < 500
