"""Tests for the vectorized batch query engine (repro.serving.engine)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import WaveletHistogram
from repro.errors import InvalidParameterError, KeyOutOfDomainError
from repro.serving.engine import BatchQueryEngine
from repro.serving.workload import WorkloadGenerator


def _histogram(u: int = 256, k: int = 24, seed: int = 7) -> WaveletHistogram:
    rng = np.random.default_rng(seed)
    dense = rng.poisson(25.0, u).astype(float) * (1.0 + rng.random(u))
    return WaveletHistogram.from_dense(dense, k)


def _scalar_range_sums(histogram: WaveletHistogram, los, his) -> np.ndarray:
    return np.array(
        [histogram.range_sum_scalar(int(lo), int(hi)) for lo, hi in zip(los, his)]
    )


class TestAgreementWithScalarLoop:
    def test_matches_scalar_loop_on_workload(self):
        histogram = _histogram()
        engine = BatchQueryEngine.from_histogram(histogram)
        workload = WorkloadGenerator(histogram.u, seed=11).generate(3_000, "mixed")
        batch = engine.range_sum_many(workload.los, workload.his)
        np.testing.assert_allclose(
            batch, _scalar_range_sums(histogram, workload.los, workload.his),
            rtol=0.0, atol=1e-9,
        )

    def test_exhaustive_on_tiny_domain(self):
        histogram = _histogram(u=16, k=16)
        engine = BatchQueryEngine.from_histogram(histogram)
        los, his = zip(*[(lo, hi) for lo in range(1, 17) for hi in range(lo, 17)])
        np.testing.assert_allclose(
            engine.range_sum_many(los, his),
            _scalar_range_sums(histogram, los, his),
            rtol=0.0, atol=1e-9,
        )

    @given(
        log_u=st.integers(min_value=0, max_value=9),
        k=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=40, deadline=None)
    def test_agreement_property(self, log_u, k, seed):
        u = 2 ** log_u
        rng = np.random.default_rng(seed)
        dense = rng.normal(0.0, 50.0, u)
        histogram = WaveletHistogram.from_dense(dense, k)
        engine = BatchQueryEngine.from_histogram(histogram)
        a = rng.integers(1, u + 1, size=64)
        b = rng.integers(1, u + 1, size=64)
        los, his = np.minimum(a, b), np.maximum(a, b)
        np.testing.assert_allclose(
            engine.range_sum_many(los, his),
            _scalar_range_sums(histogram, los, his),
            rtol=0.0, atol=1e-9,
        )

    def test_point_estimates_match_scalar(self):
        histogram = _histogram()
        engine = BatchQueryEngine.from_histogram(histogram)
        keys = np.arange(1, histogram.u + 1)
        scalar = np.array([histogram.estimate(int(key)) for key in keys])
        np.testing.assert_allclose(engine.estimate_many(keys), scalar,
                                   rtol=0.0, atol=1e-9)

    def test_histogram_batch_api_delegates_to_engine(self):
        histogram = _histogram()
        los = np.array([1, 5, 17], dtype=np.int64)
        his = np.array([4, 200, 256], dtype=np.int64)
        expected = _scalar_range_sums(histogram, los, his)
        np.testing.assert_allclose(histogram.range_sum_many(los, his), expected,
                                   rtol=0.0, atol=1e-9)
        # The scalar-looking legacy API now routes through the same engine.
        for lo, hi, value in zip(los, his, expected):
            assert histogram.range_sum(int(lo), int(hi)) == pytest.approx(value, abs=1e-9)

    def test_queried_histogram_stays_picklable(self):
        import pickle

        histogram = _histogram()
        before = histogram.range_sum(3, 77)  # caches an engine (which holds a lock)
        clone = pickle.loads(pickle.dumps(histogram))
        assert clone.coefficients == histogram.coefficients
        assert clone.range_sum(3, 77) == before

    def test_blocked_evaluation_matches_single_pass(self):
        histogram = _histogram()
        workload = WorkloadGenerator(histogram.u, seed=2).generate(1_000, "uniform")
        whole = BatchQueryEngine.from_histogram(histogram)
        blocked = BatchQueryEngine.from_histogram(histogram, block_size=17)
        assert np.array_equal(
            whole.range_sum_many(workload.los, workload.his),
            blocked.range_sum_many(workload.los, workload.his),
        )

    def test_full_budget_synopsis_caps_the_broadcast_grid(self):
        # A full-budget histogram (k = u) must not scale peak memory with k:
        # the effective block length shrinks to honour the element budget.
        u = 2 ** 12
        rng = np.random.default_rng(6)
        histogram = WaveletHistogram.from_dense(rng.normal(0, 10, u), u)
        engine = BatchQueryEngine.from_histogram(histogram)
        assert engine._block_length() * engine.num_coefficients <= 2 ** 21 + u
        workload = WorkloadGenerator(u, seed=7).generate(2_000, "uniform")
        np.testing.assert_allclose(
            engine.range_sum_many(workload.los, workload.his),
            _scalar_range_sums(histogram, workload.los, workload.his),
            rtol=0.0, atol=1e-9,
        )


class TestEdgeCasesAndValidation:
    def test_empty_histogram_answers_zero(self):
        engine = BatchQueryEngine(64, {})
        assert np.array_equal(engine.range_sum_many([1, 3], [64, 9]), [0.0, 0.0])
        assert engine.estimated_total() == 0.0

    def test_domain_of_one(self):
        engine = BatchQueryEngine(1, {1: 4.0})
        np.testing.assert_allclose(engine.range_sum_many([1], [1]), [4.0])
        np.testing.assert_allclose(engine.estimate_many([1]), [4.0])

    def test_empty_batch(self):
        engine = BatchQueryEngine.from_histogram(_histogram())
        assert engine.range_sum_many([], []).shape == (0,)
        assert engine.estimate_many([]).shape == (0,)

    def test_rejects_inverted_and_out_of_domain_ranges(self):
        engine = BatchQueryEngine.from_histogram(_histogram(u=64))
        with pytest.raises(InvalidParameterError):
            engine.range_sum_many([5], [4])
        with pytest.raises(KeyOutOfDomainError):
            engine.range_sum_many([0], [4])
        with pytest.raises(KeyOutOfDomainError):
            engine.range_sum_many([1], [65])
        with pytest.raises(KeyOutOfDomainError):
            engine.estimate_many([0])
        with pytest.raises(InvalidParameterError):
            engine.range_sum_many([1, 2], [3])

    def test_coefficient_arrays_are_read_only(self):
        engine = BatchQueryEngine.from_histogram(_histogram())
        indices, values = engine.coefficient_arrays()
        assert not indices.flags.writeable and not values.flags.writeable
        with pytest.raises(ValueError):
            values[0] = 0.0

    def test_rejects_bad_construction(self):
        with pytest.raises(KeyOutOfDomainError):
            BatchQueryEngine(16, {17: 1.0})
        with pytest.raises(InvalidParameterError):
            BatchQueryEngine(16, {1: 1.0}, cache_size=-1)
        with pytest.raises(InvalidParameterError):
            BatchQueryEngine(16, {1: 1.0}, block_size=0)

    def test_selectivity_normalises_by_estimated_total(self):
        histogram = _histogram()
        engine = BatchQueryEngine.from_histogram(histogram)
        full = engine.selectivity_many([1], [histogram.u])
        assert full[0] == pytest.approx(1.0, abs=1e-9)
        halves = engine.selectivity_many([1, histogram.u // 2 + 1],
                                         [histogram.u // 2, histogram.u])
        assert float(halves.sum()) == pytest.approx(1.0, abs=1e-9)

    def test_selectivity_with_zero_total_is_zero(self):
        engine = BatchQueryEngine(32, {})
        assert np.array_equal(engine.selectivity_many([1], [32]), [0.0])


class TestRangeCache:
    def test_cached_results_identical_to_uncached(self):
        histogram = _histogram()
        plain = BatchQueryEngine.from_histogram(histogram)
        cached = BatchQueryEngine.from_histogram(histogram, cache_size=64)
        workload = WorkloadGenerator(histogram.u, seed=4).generate(2_000, "zipfian")
        expected = plain.range_sum_many(workload.los, workload.his)
        assert np.array_equal(cached.range_sum_many(workload.los, workload.his), expected)
        # Second pass is served (partly) from cache and must not change answers.
        assert np.array_equal(cached.range_sum_many(workload.los, workload.his), expected)
        info = cached.cache_info()
        assert info["hits"] > 0 and info["misses"] > 0
        assert info["size"] <= 64

    def test_hit_and_miss_accounting(self):
        engine = BatchQueryEngine.from_histogram(_histogram(), cache_size=8)
        engine.range_sum_many([1, 1, 3], [10, 10, 9])
        info = engine.cache_info()
        # Two unique ranges computed; the duplicate (1, 10) reuses the result.
        assert info["misses"] == 2 and info["hits"] == 1 and info["size"] == 2
        engine.range_sum_many([1], [10])
        assert engine.cache_info()["hits"] == 2

    def test_lru_eviction_order(self):
        engine = BatchQueryEngine.from_histogram(_histogram(), cache_size=2)
        engine.range_sum_many([1], [2])   # cache: (1,2)
        engine.range_sum_many([3], [4])   # cache: (1,2), (3,4)
        engine.range_sum_many([1], [2])   # touch (1,2); LRU is now (3,4)
        engine.range_sum_many([5], [6])   # evicts (3,4)
        engine.range_sum_many([1], [2])   # still cached -> hit
        assert engine.cache_info()["hits"] == 2
        engine.range_sum_many([3], [4])   # evicted -> miss
        assert engine.cache_info()["misses"] == 4

    def test_cache_clear_keeps_statistics(self):
        engine = BatchQueryEngine.from_histogram(_histogram(), cache_size=8)
        engine.range_sum_many([1, 1], [8, 8])
        engine.cache_clear()
        info = engine.cache_info()
        assert info["size"] == 0 and info["misses"] == 1 and info["hits"] == 1


class TestWorkloadGenerator:
    def test_bounds_and_determinism(self):
        for mix in ("uniform", "zipfian", "range_skewed", "mixed"):
            workload = WorkloadGenerator(512, seed=9).generate(1_000, mix)
            again = WorkloadGenerator(512, seed=9).generate(1_000, mix)
            assert len(workload) == 1_000 and workload.mix == mix
            assert workload.los.min() >= 1 and workload.his.max() <= 512
            assert np.all(workload.los <= workload.his)
            assert workload == again
        assert (WorkloadGenerator(512, seed=9).generate(100, "uniform")
                != WorkloadGenerator(512, seed=10).generate(100, "uniform"))

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(512, seed=1).generate(500, "uniform")
        b = WorkloadGenerator(512, seed=2).generate(500, "uniform")
        assert not np.array_equal(a.los, b.los)

    def test_zipfian_mix_repeats_ranges(self):
        workload = WorkloadGenerator(1 << 14, seed=3).generate(4_000, "zipfian")
        unique = np.unique(np.stack([workload.los, workload.his], axis=1), axis=0)
        assert unique.shape[0] < len(workload)  # hot set repeats -> cacheable

    def test_rejects_bad_parameters(self):
        generator = WorkloadGenerator(64)
        with pytest.raises(InvalidParameterError):
            generator.generate(0, "uniform")
        with pytest.raises(InvalidParameterError):
            generator.generate(10, "nope")
        with pytest.raises(InvalidParameterError):
            WorkloadGenerator(64, alpha=0.0)

    def test_tiny_domain(self):
        workload = WorkloadGenerator(1, seed=5).generate(50, "mixed")
        assert np.all(workload.los == 1) and np.all(workload.his == 1)
