"""Tests for the Group-Count Sketch and its hierarchy (repro.sketches.gcs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SketchError
from repro.sketches.gcs import GroupCountSketch, HierarchicalGcs


def _populated_sketch(seed: int = 11) -> GroupCountSketch:
    sketch = GroupCountSketch(universe=256, shift=4, depth=3, group_buckets=32,
                              item_buckets=8, seed=seed)
    # Group 3 (items 48..63) carries almost all the energy.
    items = np.array([48, 49, 50, 200], dtype=np.int64)
    deltas = np.array([100.0, -80.0, 60.0, 2.0])
    sketch.update_batch(items, deltas)
    return sketch


class TestGroupCountSketch:
    def test_group_energy_identifies_heavy_group(self):
        sketch = _populated_sketch()
        heavy = sketch.group_energy(3)
        light = sketch.group_energy(12)  # items 192..207 hold only the +2 update
        assert heavy > light
        assert heavy == pytest.approx(100**2 + 80**2 + 60**2, rel=0.5)

    def test_point_estimates_at_finest_shift(self):
        sketch = GroupCountSketch(universe=128, shift=0, depth=5, group_buckets=64,
                                  item_buckets=8, seed=5)
        sketch.update(10, 500.0)
        sketch.update(11, -3.0)
        sketch.update(90, 7.0)
        assert sketch.estimate_item(10) == pytest.approx(500.0, rel=0.05)

    def test_single_and_batch_updates_agree(self):
        a = GroupCountSketch(universe=64, shift=2, seed=3)
        b = GroupCountSketch(universe=64, shift=2, seed=3)
        updates = [(1, 5.0), (20, -2.0), (63, 8.0)]
        for item, delta in updates:
            a.update(item, delta)
        b.update_batch(np.array([u[0] for u in updates]), np.array([u[1] for u in updates]))
        for group in range(b.num_groups):
            assert a.group_energy(group) == pytest.approx(b.group_energy(group))

    def test_merge_in_place_is_linear(self):
        a = _populated_sketch(seed=21)
        b = GroupCountSketch(universe=256, shift=4, depth=3, group_buckets=32,
                             item_buckets=8, seed=21)
        b.update(48, -100.0)
        b.update(49, 80.0)
        b.update(50, -60.0)
        b.update(200, -2.0)
        a.merge_in_place(b)
        # Everything cancelled, so every group's energy estimate is zero.
        for group in range(a.num_groups):
            assert a.group_energy(group) == pytest.approx(0.0, abs=1e-9)

    def test_merge_rejects_incompatible(self):
        a = GroupCountSketch(universe=64, shift=2, seed=1)
        b = GroupCountSketch(universe=64, shift=2, seed=2)
        with pytest.raises(SketchError):
            a.merge_in_place(b)

    def test_update_validation(self):
        sketch = GroupCountSketch(universe=64, shift=2, seed=1)
        with pytest.raises(SketchError):
            sketch.update(64, 1.0)
        with pytest.raises(SketchError):
            sketch.update_batch(np.array([1, 2]), np.array([1.0]))

    def test_constructor_validation(self):
        with pytest.raises(SketchError):
            GroupCountSketch(universe=0, shift=0)
        with pytest.raises(SketchError):
            GroupCountSketch(universe=16, shift=-1)
        with pytest.raises(SketchError):
            GroupCountSketch(universe=16, shift=0, depth=0)

    def test_sizes_and_update_ops(self):
        sketch = GroupCountSketch(universe=64, shift=0, depth=2, group_buckets=8,
                                  item_buckets=4, seed=1)
        assert sketch.total_cells == 64
        sketch.update(3, 5.0)
        assert sketch.update_ops == 2
        assert sketch.nonzero_entries() == 2
        assert sketch.serialized_size_bytes() == 24

    def test_empty_batch_is_a_noop(self):
        sketch = GroupCountSketch(universe=64, shift=0, seed=1)
        sketch.update_batch(np.array([], dtype=np.int64), np.array([], dtype=float))
        assert sketch.nonzero_entries() == 0


class TestHierarchicalGcs:
    def test_constructor_levels(self):
        gcs = HierarchicalGcs(universe=4096, branching=8, depth=3, group_buckets=32,
                              item_buckets=8, seed=7)
        assert gcs.num_levels >= 4
        assert gcs.levels[0].shift == 0  # finest level first
        shifts = [level.shift for level in gcs.levels]
        assert shifts == sorted(shifts)

    def test_rejects_bad_universe_or_branching(self):
        with pytest.raises(SketchError):
            HierarchicalGcs(universe=100)
        with pytest.raises(SketchError):
            HierarchicalGcs(universe=64, branching=3)

    def test_search_finds_planted_heavy_items(self):
        gcs = HierarchicalGcs(universe=4096, branching=8, depth=3, group_buckets=64,
                              item_buckets=8, seed=13)
        heavy = {5: 900.0, 600: -750.0, 3000: 820.0}
        rng = np.random.default_rng(0)
        noise_items = rng.choice(4096, size=200, replace=False)
        for item, value in heavy.items():
            gcs.update(item, value)
        for item in noise_items:
            if int(item) not in heavy:
                gcs.update(int(item), float(rng.normal(scale=2.0)))
        found = gcs.search_top_k(3)
        assert set(found) == set(heavy)
        for item, value in heavy.items():
            assert found[item] == pytest.approx(value, rel=0.1)

    def test_search_respects_k(self):
        gcs = HierarchicalGcs(universe=256, seed=3)
        for item in range(20):
            gcs.update(item * 13 % 256, float(100 + item))
        assert len(gcs.search_top_k(5)) <= 5

    def test_significance_filter_suppresses_noise_only_results(self):
        gcs = HierarchicalGcs(universe=1024, depth=3, group_buckets=8, item_buckets=4, seed=5)
        rng = np.random.default_rng(1)
        for item in rng.choice(1024, size=400, replace=False):
            gcs.update(int(item), float(rng.normal(scale=1.0)))
        strict = gcs.search_top_k(10, significance=4.0)
        relaxed = gcs.search_top_k(10, significance=0.0)
        assert len(strict) <= len(relaxed)

    def test_merge_matches_single_sketch_of_union(self):
        kwargs = dict(universe=512, branching=4, depth=3, group_buckets=32,
                      item_buckets=8, seed=17)
        a = HierarchicalGcs(**kwargs)
        b = HierarchicalGcs(**kwargs)
        union = HierarchicalGcs(**kwargs)
        for item, value in [(3, 100.0), (200, -40.0)]:
            a.update(item, value)
            union.update(item, value)
        for item, value in [(200, -60.0), (400, 90.0)]:
            b.update(item, value)
            union.update(item, value)
        a.merge_in_place(b)
        for item in (3, 200, 400, 17):
            assert a.estimate_item(item) == pytest.approx(union.estimate_item(item))

    def test_merge_rejects_incompatible_hierarchies(self):
        a = HierarchicalGcs(universe=512, seed=1)
        b = HierarchicalGcs(universe=512, seed=2)
        with pytest.raises(SketchError):
            a.merge_in_place(b)

    def test_from_space_budget_respects_bytes(self):
        gcs = HierarchicalGcs.from_space_budget(universe=4096, bytes_per_level=8192,
                                                branching=8, depth=3)
        for level in gcs.levels:
            assert level.total_cells * 8 <= 8192 * 1.01

    def test_update_ops_and_sizes_accumulate(self):
        gcs = HierarchicalGcs(universe=256, seed=2)
        gcs.update(1, 10.0)
        assert gcs.update_ops == gcs.num_levels * gcs.depth
        assert gcs.nonzero_entries() > 0
        assert gcs.serialized_size_bytes() == gcs.nonzero_entries() * 12
        assert gcs.total_cells == sum(level.total_cells for level in gcs.levels)

    def test_search_validation(self):
        gcs = HierarchicalGcs(universe=256, seed=2)
        with pytest.raises(SketchError):
            gcs.search_top_k(0)
