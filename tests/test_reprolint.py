"""Tests for the reprolint static-analysis suite (tools/reprolint).

Each rule gets positive fixtures (violations must be found) and negative
fixtures (idiomatic code must stay clean), plus pragma suppression, the JSON
report schema, CLI exit codes, the lint_no_print shim contract — and the
meta-test: the shipped ``src/repro`` tree lints clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import lint_paths, rule_names  # noqa: E402
from tools.reprolint.driver import module_name_for, parse_suppressions  # noqa: E402


def write_module(root: Path, relpath: str, source: str) -> Path:
    """Write a fixture module under a fake ``src/repro`` tree."""
    path = root / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def rules_hit(result) -> set:
    return {finding.rule for finding in result.findings}


class TestDriver:
    def test_all_five_rules_registered(self):
        names = rule_names()
        for expected in ("determinism", "layering", "lock-discipline",
                         "no-print", "picklability"):
            assert expected in names

    def test_module_name_fallback_without_init_files(self, tmp_path):
        path = write_module(tmp_path, "src/repro/serving/store.py", "x = 1\n")
        assert module_name_for(path) == "repro.serving.store"

    def test_module_name_for_package_init(self, tmp_path):
        path = write_module(tmp_path, "src/repro/serving/__init__.py", "")
        assert module_name_for(path) == "repro.serving"

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        write_module(tmp_path, "src/repro/core/broken.py", "def f(:\n")
        result = lint_paths([tmp_path / "src"])
        assert [f.rule for f in result.findings] == ["syntax-error"]

    def test_unknown_rule_raises(self, tmp_path):
        write_module(tmp_path, "src/repro/core/ok.py", "x = 1\n")
        with pytest.raises(KeyError):
            lint_paths([tmp_path / "src"], ["no-such-rule"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"])

    def test_findings_sorted_and_deterministic(self, tmp_path):
        write_module(tmp_path, "src/repro/core/zz.py", "print(1)\nprint(2)\n")
        write_module(tmp_path, "src/repro/core/aa.py", "print(3)\n")
        first = lint_paths([tmp_path / "src"], ["no-print"])
        second = lint_paths([tmp_path / "src"], ["no-print"])
        assert [f.to_json() for f in first.findings] == [f.to_json() for f in second.findings]
        assert [Path(f.path).name for f in first.findings] == ["aa.py", "zz.py", "zz.py"]
        assert [f.line for f in first.findings] == [1, 1, 2]


class TestLayeringRule:
    def test_serving_importing_algorithms_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/bad.py",
                     "from repro.algorithms.send_v import SendV\n")
        result = lint_paths([tmp_path / "src"], ["layering"])
        assert rules_hit(result) == {"layering"}

    def test_streaming_importing_experiments_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/streaming/bad.py",
                     "import repro.experiments.figures\n")
        result = lint_paths([tmp_path / "src"], ["layering"])
        assert rules_hit(result) == {"layering"}

    def test_telemetry_importing_anything_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/telemetry/bad.py",
                     "from repro.errors import ReproError\n")
        result = lint_paths([tmp_path / "src"], ["layering"])
        assert rules_hit(result) == {"layering"}

    def test_core_importing_mapreduce_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/core/bad.py",
                     "from repro.mapreduce.counters import Counters\n")
        result = lint_paths([tmp_path / "src"], ["layering"])
        assert rules_hit(result) == {"layering"}

    def test_allowed_edges_are_clean(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/ok.py", """
            import json
            import numpy as np
            from repro.core.haar import validate_domain
            from repro.mapreduce.executor import Executor
            from repro.telemetry import get_telemetry
            from repro.errors import ServingError
        """)
        result = lint_paths([tmp_path / "src"], ["layering"])
        assert result.findings == []

    def test_type_checking_imports_are_ignored(self, tmp_path):
        write_module(tmp_path, "src/repro/mapreduce/ok.py", """
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.algorithms.base import ExecutionOutcome
        """)
        result = lint_paths([tmp_path / "src"], ["layering"])
        assert result.findings == []

    def test_lazy_function_level_import_is_still_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/core/lazy.py", """
            def engine():
                from repro.serving.engine import BatchQueryEngine
                return BatchQueryEngine
        """)
        result = lint_paths([tmp_path / "src"], ["layering"])
        assert rules_hit(result) == {"layering"}

    def test_algorithms_may_import_service_profile_only(self, tmp_path):
        write_module(tmp_path, "src/repro/algorithms/ok.py",
                     "from repro.service.profile import RuntimeProfile\n")
        write_module(tmp_path, "src/repro/algorithms/bad.py",
                     "from repro.service.facade import SynopsisService\n")
        result = lint_paths([tmp_path / "src"], ["layering"])
        assert len(result.findings) == 1
        assert Path(result.findings[0].path).name == "bad.py"


class TestDeterminismRule:
    def test_unseeded_default_rng_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/core/bad.py", """
            import numpy as np
            rng = np.random.default_rng()
        """)
        result = lint_paths([tmp_path / "src"], ["determinism"])
        assert rules_hit(result) == {"determinism"}

    def test_seeded_default_rng_is_clean(self, tmp_path):
        write_module(tmp_path, "src/repro/core/ok.py", """
            import numpy as np
            def task_rng(seed, round_number, task_id):
                return np.random.default_rng((seed, round_number, task_id))
        """)
        result = lint_paths([tmp_path / "src"], ["determinism"])
        assert result.findings == []

    def test_legacy_global_numpy_rng_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/streaming/bad.py", """
            import numpy as np
            def jitter():
                np.random.seed(0)
                return np.random.random()
        """)
        result = lint_paths([tmp_path / "src"], ["determinism"])
        assert len(result.findings) == 2

    def test_stdlib_random_import_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/algorithms/bad.py", "import random\n")
        write_module(tmp_path, "src/repro/mapreduce/bad2.py",
                     "from random import choice\n")
        result = lint_paths([tmp_path / "src"], ["determinism"])
        assert len(result.findings) == 2

    def test_wall_clock_reads_are_flagged_but_perf_counter_allowed(self, tmp_path):
        write_module(tmp_path, "src/repro/mapreduce/clocky.py", """
            import time
            def stamp():
                return time.time()
            def duration(start):
                return time.perf_counter() - start
        """)
        result = lint_paths([tmp_path / "src"], ["determinism"])
        assert len(result.findings) == 1
        assert "time.time" in result.findings[0].message

    def test_os_environ_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/data/bad.py", """
            import os
            def scale():
                return os.environ.get("SCALE", "1")
        """)
        result = lint_paths([tmp_path / "src"], ["determinism"])
        assert rules_hit(result) == {"determinism"}

    def test_serving_layer_is_out_of_scope(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/bench_like.py", """
            import time
            def wall():
                return time.time()
        """)
        result = lint_paths([tmp_path / "src"], ["determinism"])
        assert result.findings == []


class TestPicklabilityRule:
    def test_lambda_in_task_spec_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/streaming/bad.py", """
            def shard(executor):
                return FunctionTaskSpec(function=lambda x: x, task_id=0)
        """)
        result = lint_paths([tmp_path / "src"], ["picklability"])
        assert rules_hit(result) == {"picklability"}

    def test_local_function_submitted_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/bad.py", """
            def fan_out(executor):
                def evaluate(shard):
                    return shard
                return executor.submit_task(FunctionTaskSpec(function=evaluate))
        """)
        result = lint_paths([tmp_path / "src"], ["picklability"])
        assert len(result.findings) == 1
        assert "evaluate" in result.findings[0].message

    def test_module_level_function_is_clean(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/ok.py", """
            def evaluate_shard(shard):
                return shard
            def fan_out(executor):
                return FunctionTaskSpec(function=evaluate_shard, task_id=0)
        """)
        result = lint_paths([tmp_path / "src"], ["picklability"])
        assert result.findings == []

    def test_lambda_elsewhere_is_not_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/ok2.py", """
            def order(items):
                return sorted(items, key=lambda pair: pair[0])
        """)
        result = lint_paths([tmp_path / "src"], ["picklability"])
        assert result.findings == []


class TestLockDisciplineRule:
    def test_unguarded_mutation_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/bad.py", """
            import threading
            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._table = {}
                def put(self, key, value):
                    self._table[key] = value
        """)
        result = lint_paths([tmp_path / "src"], ["lock-discipline"])
        assert rules_hit(result) == {"lock-discipline"}

    def test_guarded_mutation_and_locked_helpers_are_clean(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/ok.py", """
            import threading
            class Cache:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._table = {}
                    self._order = []
                def put(self, key, value):
                    with self._lock:
                        self._table[key] = value
                        self._evict_locked()
                def _evict_locked(self):
                    self._order.pop()
        """)
        result = lint_paths([tmp_path / "src"], ["lock-discipline"])
        assert result.findings == []

    def test_mutating_call_outside_lock_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/bad2.py", """
            import threading
            class Stats:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._events = []
                def note(self, event):
                    self._events.append(event)
        """)
        result = lint_paths([tmp_path / "src"], ["lock-discipline"])
        assert len(result.findings) == 1
        assert ".append()" in result.findings[0].message

    def test_class_without_lock_is_out_of_scope(self, tmp_path):
        write_module(tmp_path, "src/repro/core/ok.py", """
            class Accumulator:
                def __init__(self):
                    self._total = 0
                def add(self, value):
                    self._total += value
        """)
        result = lint_paths([tmp_path / "src"], ["lock-discipline"])
        assert result.findings == []


class TestNoPrintRule:
    def test_print_in_library_module_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/core/bad.py", "print('hi')\n")
        result = lint_paths([tmp_path / "src"], ["no-print"])
        assert rules_hit(result) == {"no-print"}

    def test_cli_and_reporting_are_allowed(self, tmp_path):
        write_module(tmp_path, "src/repro/cli.py", "print('hi')\n")
        write_module(tmp_path, "src/repro/experiments/reporting.py",
                     "print('hi')\n")
        result = lint_paths([tmp_path / "src"], ["no-print"])
        assert result.findings == []

    def test_docstring_mentions_are_not_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/core/ok.py", '''
            def f():
                """Never calls print() at runtime."""
                return "print(x)"
        ''')
        result = lint_paths([tmp_path / "src"], ["no-print"])
        assert result.findings == []


class TestHotPathCopyRule:
    def test_np_array_on_hot_path_is_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/mapreduce/columnar.py", """
            import numpy as np
            def route(keys):
                return np.array(keys)
        """)
        result = lint_paths([tmp_path / "src"], ["hot-path-copy"])
        assert rules_hit(result) == {"hot-path-copy"}

    def test_copy_and_tobytes_methods_are_flagged(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/engine.py", """
            def widen(values):
                return values.copy(), values.tobytes()
        """)
        result = lint_paths([tmp_path / "src"], ["hot-path-copy"])
        assert len(result.findings) == 2

    def test_views_and_asarray_are_clean(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/store.py", """
            import numpy as np
            def adopt(payload):
                view = np.asarray(payload).view()
                return np.frombuffer(payload, dtype="<i8")
        """)
        result = lint_paths([tmp_path / "src"], ["hot-path-copy"])
        assert result.findings == []

    def test_cold_modules_are_out_of_scope(self, tmp_path):
        write_module(tmp_path, "src/repro/experiments/figures.py", """
            import numpy as np
            def plot(xs):
                return np.array(xs).copy().tobytes()
        """)
        result = lint_paths([tmp_path / "src"], ["hot-path-copy"])
        assert result.findings == []

    def test_pragma_marks_a_deliberate_copy(self, tmp_path):
        write_module(tmp_path, "src/repro/serving/store.py", """
            def serialize(indices):
                return indices.tobytes()  # reprolint: disable=hot-path-copy
        """)
        result = lint_paths([tmp_path / "src"], ["hot-path-copy"])
        assert result.findings == []
        assert len(result.suppressed) == 1


class TestSuppressionPragmas:
    def test_trailing_pragma_suppresses_and_is_counted(self, tmp_path):
        write_module(tmp_path, "src/repro/core/ok.py", """
            import numpy as np
            rng = np.random.default_rng()  # reprolint: disable=determinism
        """)
        result = lint_paths([tmp_path / "src"], ["determinism"])
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule == "determinism"

    def test_comment_above_pragma_suppresses(self, tmp_path):
        write_module(tmp_path, "src/repro/core/ok2.py", """
            import numpy as np
            # reprolint: disable=determinism
            rng = np.random.default_rng()
        """)
        result = lint_paths([tmp_path / "src"], ["determinism"])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_pragma_only_covers_named_rule(self, tmp_path):
        write_module(tmp_path, "src/repro/core/bad.py", """
            import numpy as np
            rng = np.random.default_rng()  # reprolint: disable=layering
        """)
        result = lint_paths([tmp_path / "src"], ["determinism"])
        assert len(result.findings) == 1

    def test_file_wide_pragma(self, tmp_path):
        write_module(tmp_path, "src/repro/core/ok3.py", """
            # reprolint: disable-file=no-print
            print("a")
            print("b")
        """)
        result = lint_paths([tmp_path / "src"], ["no-print"])
        assert result.findings == []
        assert len(result.suppressed) == 2

    def test_multiple_rules_in_one_pragma(self):
        suppressions = parse_suppressions(
            ["x = 1  # reprolint: disable=determinism, layering"])
        assert suppressions.covers("determinism", 1)
        assert suppressions.covers("layering", 1)
        assert not suppressions.covers("no-print", 1)


class TestJsonReport:
    def test_schema(self, tmp_path):
        write_module(tmp_path, "src/repro/core/bad.py", "print('x')\n")
        result = lint_paths([tmp_path / "src"], ["no-print"])
        payload = json.loads(result.to_json())
        assert payload["version"] == 1
        assert payload["rules"] == ["no-print"]
        assert payload["files_checked"] == 1
        assert payload["summary"] == {"findings": 1, "suppressed": 0,
                                      "ok": False}
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "message"}
        assert finding["rule"] == "no-print"
        assert finding["line"] == 1
        assert payload["suppressed"] == []


class TestCommandLine:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            cwd=REPO_ROOT, capture_output=True, text=True)

    def test_exit_zero_and_json_report_on_clean_tree(self, tmp_path):
        write_module(tmp_path, "src/repro/core/ok.py", "x = 1\n")
        report = tmp_path / "report.json"
        proc = self.run_cli(str(tmp_path / "src"), "--json-report", str(report))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "OK" in proc.stdout
        assert json.loads(report.read_text())["summary"]["ok"] is True

    def test_exit_one_on_findings_with_json_format(self, tmp_path):
        write_module(tmp_path, "src/repro/core/bad.py", "print('x')\n")
        proc = self.run_cli(str(tmp_path / "src"), "--format", "json")
        assert proc.returncode == 1
        assert json.loads(proc.stdout)["summary"]["findings"] == 1

    def test_exit_two_on_unknown_rule_or_path(self, tmp_path):
        assert self.run_cli("--rules", "bogus", ".").returncode == 2
        assert self.run_cli(str(tmp_path / "missing")).returncode == 2

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule in ("layering", "determinism", "picklability",
                     "lock-discipline", "no-print"):
            assert rule in proc.stdout


class TestLintNoPrintShim:
    def run_shim(self, target):
        return subprocess.run(
            [sys.executable, "tools/lint_no_print.py", str(target)],
            cwd=REPO_ROOT, capture_output=True, text=True)

    def test_clean_tree_exits_zero(self):
        proc = self.run_shim(REPO_ROOT / "src" / "repro")
        assert proc.returncode == 0, proc.stderr

    def test_violation_exits_one_with_file_line_on_stderr(self, tmp_path):
        path = write_module(tmp_path, "src/repro/core/bad.py", "print('x')\n")
        proc = self.run_shim(tmp_path / "src" / "repro")
        assert proc.returncode == 1
        assert f"{path}:1" in proc.stderr

    def test_missing_directory_exits_two(self, tmp_path):
        proc = self.run_shim(tmp_path / "missing")
        assert proc.returncode == 2


class TestShippedTreeIsClean:
    """The meta-test: the repository's own library passes every rule."""

    def test_src_repro_lints_clean(self):
        result = lint_paths([REPO_ROOT / "src" / "repro"])
        assert result.findings == [], "\n" + "\n".join(
            finding.format() for finding in result.findings)
        # The deliberate, documented exceptions stay visible as suppressions:
        # the core→serving lazy engine import, the unseeded convenience rng
        # in the hash-family constructor, and the deliberate materialisations
        # on the zero-copy hot paths (serialisers, reference constructors).
        suppressed_rules = {finding.rule for finding in result.suppressed}
        assert suppressed_rules == {"layering", "determinism", "hot-path-copy"}

    def test_every_registered_rule_ran(self):
        result = lint_paths([REPO_ROOT / "src" / "repro"])
        assert result.rules == rule_names()
        assert result.files_checked > 70
